(** See the interface for the contract.  One mutex guards all mutable
    state: spans arrive from every domain the evaluation matrix fans out
    over, and counters must aggregate deterministically (sums commute).
    The disabled recorder never touches the mutex or the clock. *)

type arg = Str of string | Int of int | Float of float

type span = {
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_depth : int;
  sp_args : (string * arg) list;
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array;  (** bucket [i] counts values in [2^(i-1), 2^i) *)
}

type t = {
  on : bool;
  clock : Clock.t;
  mutex : Mutex.t;
  mutable rev_spans : span list;  (** newest first *)
  mutable n_spans : int;
  ctrs : (string, int) Hashtbl.t;
  gaug : (string, float) Hashtbl.t;
  hsts : (string, hist) Hashtbl.t;
  depths : (int, int) Hashtbl.t;  (** wall tid -> currently open spans *)
}

let wall_pid = 1
let sim_pid = 2

let make ~on ~clock =
  {
    on;
    clock;
    mutex = Mutex.create ();
    rev_spans = [];
    n_spans = 0;
    ctrs = Hashtbl.create 16;
    gaug = Hashtbl.create 8;
    hsts = Hashtbl.create 8;
    depths = Hashtbl.create 8;
  }

let disabled = make ~on:false ~clock:(fun () -> 0.0)
let create ?(clock = Clock.monotonic) () = make ~on:true ~clock
let enabled t = t.on

let now_ns t = if t.on then t.clock () else Clock.monotonic ()

let self_tid () = (Domain.self () :> int)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let depth_of t tid = Option.value ~default:0 (Hashtbl.find_opt t.depths tid)

let push t sp =
  t.rev_spans <- sp :: t.rev_spans;
  t.n_spans <- t.n_spans + 1

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span t ?(cat = "") ?(args = []) name f =
  if not t.on then f ()
  else begin
    let tid = self_tid () in
    let depth =
      locked t (fun () ->
          let d = depth_of t tid in
          Hashtbl.replace t.depths tid (d + 1);
          d)
    in
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let dur = t.clock () -. t0 in
        locked t (fun () ->
            Hashtbl.replace t.depths tid (depth_of t tid - 1);
            push t
              {
                sp_name = name;
                sp_cat = cat;
                sp_pid = wall_pid;
                sp_tid = tid;
                sp_start_ns = t0;
                sp_dur_ns = dur;
                sp_depth = depth;
                sp_args = args;
              }))
      f
  end

let emit_span t ?(cat = "") ?(args = []) ?(pid = 1) ?tid ~start_ns ~dur_ns name =
  if t.on then begin
    let tid = match tid with Some i -> i | None -> self_tid () in
    locked t (fun () ->
        let depth = if pid = wall_pid then depth_of t tid else 0 in
        push t
          {
            sp_name = name;
            sp_cat = cat;
            sp_pid = pid;
            sp_tid = tid;
            sp_start_ns = start_ns;
            sp_dur_ns = dur_ns;
            sp_depth = depth;
            sp_args = args;
          })
  end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let add t name n =
  if t.on && n <> 0 then
    locked t (fun () ->
        let v = Option.value ~default:0 (Hashtbl.find_opt t.ctrs name) in
        Hashtbl.replace t.ctrs name (v + n))

let set_gauge t name v =
  if t.on then locked t (fun () -> Hashtbl.replace t.gaug name v)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let hist_buckets = 64

let hist_create () = { h_count = 0; h_sum = 0.0; h_buckets = Array.make hist_buckets 0 }

(* bucket [i] holds values in [2^(i-1), 2^i): the value's binary
   exponent, clamped.  Everything below 1 (and any non-finite or
   non-positive junk) lands in bucket 0, so a quantile is always an
   upper bound, never an undershoot *)
let bucket_of v =
  if not (Float.is_finite v) || v < 1.0 then 0
  else
    let (_, e) = Float.frexp v in
    if e >= hist_buckets then hist_buckets - 1 else e

let hist_record (h : hist) v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let hist_merge_into ~into:(dst : hist) (src : hist) =
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum +. src.h_sum;
  Array.iteri (fun i n -> dst.h_buckets.(i) <- dst.h_buckets.(i) + n)
    src.h_buckets

let hist_copy (h : hist) =
  { h_count = h.h_count; h_sum = h.h_sum; h_buckets = Array.copy h.h_buckets }

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let hist_quantile (h : hist) q =
  if h.h_count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = Float.max 1.0 (Float.round (q *. float_of_int h.h_count)) in
    let acc = ref 0 in
    let b = ref 0 in
    (try
       for i = 0 to hist_buckets - 1 do
         acc := !acc + h.h_buckets.(i);
         if float_of_int !acc >= rank then begin
           b := i;
           raise Exit
         end
       done;
       b := hist_buckets - 1
     with Exit -> ());
    (* upper bound of the bucket: the quantile is at most this *)
    Float.ldexp 1.0 !b
  end

let hist_render (h : hist) =
  Printf.sprintf "count=%d sum=%.3f p50<=%g p90<=%g p99<=%g" h.h_count h.h_sum
    (hist_quantile h 0.5) (hist_quantile h 0.9) (hist_quantile h 0.99)

let record_hist t name v =
  if t.on then
    locked t (fun () ->
        let h =
          match Hashtbl.find_opt t.hsts name with
          | Some h -> h
          | None ->
            let h = hist_create () in
            Hashtbl.replace t.hsts name h;
            h
        in
        hist_record h v)

let hist_of t name =
  locked t (fun () -> Option.map hist_copy (Hashtbl.find_opt t.hsts name))

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let spans t = locked t (fun () -> List.rev t.rev_spans)
let span_count t = locked t (fun () -> t.n_spans)

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters t = locked t (fun () -> sorted_bindings t.ctrs)
let gauges t = locked t (fun () -> sorted_bindings t.gaug)

let hists t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold (fun k h acc -> (k, hist_copy h) :: acc) t.hsts []))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f

let args_json = function
  | [] -> ""
  | args ->
    let fields =
      List.map
        (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (arg_json v))
        args
    in
    Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

let us ns = ns /. 1e3

let span_json sp =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
     \"pid\":%d,\"tid\":%d%s}"
    (json_escape sp.sp_name)
    (json_escape (if sp.sp_cat = "" then "misc" else sp.sp_cat))
    (us sp.sp_start_ns) (us sp.sp_dur_ns) sp.sp_pid sp.sp_tid
    (args_json sp.sp_args)

let chrome_string t =
  let (sps, ctrs, gaug) =
    locked t (fun () ->
        (List.rev t.rev_spans, sorted_bindings t.ctrs, sorted_bindings t.gaug))
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
        \"args\":{\"name\":\"wall clock\"}}"
       wall_pid);
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
        \"args\":{\"name\":\"simulated time\"}}"
       sim_pid);
  List.iter (fun sp -> emit (span_json sp)) sps;
  (* counters and gauges: one sample each, at the end of the trace *)
  let t_end =
    List.fold_left
      (fun acc sp ->
        if sp.sp_pid = wall_pid then Float.max acc (sp.sp_start_ns +. sp.sp_dur_ns)
        else acc)
      0.0 sps
  in
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\
            \"args\":{\"value\":%d}}"
           (json_escape name) (us t_end) wall_pid v))
    ctrs;
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\
            \"args\":{\"value\":%g}}"
           (json_escape name) (us t_end) wall_pid v))
    gaug;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (chrome_string t))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let summary t =
  let (sps, ctrs, gaug, hsts) =
    locked t (fun () ->
        ( List.rev t.rev_spans,
          sorted_bindings t.ctrs,
          sorted_bindings t.gaug,
          List.sort compare
            (Hashtbl.fold (fun k h acc -> (k, hist_copy h) :: acc) t.hsts [])
        ))
  in
  let agg = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let key = (sp.sp_cat, sp.sp_name) in
      let (n, total) =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt agg key)
      in
      Hashtbl.replace agg key (n + 1, total +. sp.sp_dur_ns))
    sps;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== telemetry summary ==\n";
  Buffer.add_string buf "spans (cat/name, count, total ms):\n";
  List.iter
    (fun ((cat, name), (n, total)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %6d %12.3f\n"
           ((if cat = "" then "misc" else cat) ^ "/" ^ name)
           n (total /. 1e6)))
    (sorted_bindings agg);
  if ctrs <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name v))
      ctrs
  end;
  if gaug <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %g\n" name v))
      gaug
  end;
  if hsts <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s %s\n" name (hist_render h)))
      hsts
  end;
  Buffer.contents buf
