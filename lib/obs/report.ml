(** Power-decision audit report (see report.mli for the model).

    Implementation notes.  A report is a mutex-protected accumulator of
    (scope, event) pairs; scopes live in domain-local storage so the
    evaluation matrix can emit from its whole pool without threading a
    label through every transform.  [to_json] stable-sorts by scope:
    which domain evaluated which matrix cell depends on the pool size,
    but each cell runs its pipeline sequentially inside one domain, so
    sorting by scope (and keeping within-scope emission order) makes the
    exported report deterministic whatever [--jobs] was. *)

module J = Lp_util.Json

type gate_kind = Loop_gate | Entry_gate

type decision =
  | Pattern_verdict of {
      pv_func : string;
      pv_verdict : string;
      pv_kind : string option;
      pv_origin : string option;
      pv_reason : string option;
    }
  | Gating_insert of {
      gi_func : string;
      gi_site : string;
      gi_kind : gate_kind;
      gi_components : string list;
      gi_suppressed : string list;
      gi_below_break_even : string list;
      gi_est_cycles : float;
      gi_landings : int;
    }
  | Gating_merge of {
      gm_func : string;
      gm_block : int;
      gm_rule : string;
      gm_components : string list;
    }
  | Dvfs_decision of {
      dv_func : string;
      dv_site : string;
      dv_core_class : string;
      dv_ladder : string;
      dv_mu : float;
      dv_est_cycles : float;
      dv_chosen : int option;
      dv_rejected : (string * string) list;
      dv_reason : string option;
    }
  | Pass_delta of {
      pd_pass : string;
      pd_run : int;
      pd_changes : int;
      pd_instrs_before : int;
      pd_instrs_after : int;
    }

type sim_record = {
  sr_duration_ns : float;
  sr_instrs : int;
  sr_implicit_wakeups : int;
  sr_gate_transitions : int;
  sr_dvfs_transitions : int;
  sr_energy : J.t;
  sr_core_energy : J.t list;
  sr_predecode : bool;
}

type t = {
  on : bool;
  mutex : Mutex.t;
  (* All three lists are kept newest-first; accessors reverse. *)
  mutable decisions : (string * decision) list;
  mutable sims : (string * sim_record) list;
  mutable warnings : string list;
}

let disabled =
  { on = false; mutex = Mutex.create (); decisions = []; sims = [];
    warnings = [] }

let create () =
  { on = true; mutex = Mutex.create (); decisions = []; sims = [];
    warnings = [] }

let enabled t = t.on

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

let scope_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")

let current_scope () = Domain.DLS.get scope_key

let with_scope name f =
  let prev = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key name;
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key prev) f

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add t d =
  if t.on then
    let scope = current_scope () in
    locked t (fun () -> t.decisions <- (scope, d) :: t.decisions)

let add_sim t sr =
  if t.on then
    let scope = current_scope () in
    locked t (fun () -> t.sims <- (scope, sr) :: t.sims)

let warn t msg =
  if t.on then locked t (fun () -> t.warnings <- msg :: t.warnings)

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

(* Stable sort by scope, preserving within-scope emission order: the
   raw lists are newest-first, so reverse before sorting. *)
let by_scope pairs =
  List.stable_sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.rev pairs)

let decisions t = locked t (fun () -> by_scope t.decisions)
let sims t = locked t (fun () -> by_scope t.sims)
let warnings t = locked t (fun () -> List.sort String.compare t.warnings)

let implicit_wakeups t =
  locked t (fun () ->
      List.fold_left
        (fun acc (_, sr) -> acc + sr.sr_implicit_wakeups)
        0 t.sims)

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let str_list xs = J.List (List.map (fun s -> J.Str s) xs)

let opt_str = function Some s -> J.Str s | None -> J.Null

let gate_kind_to_string = function
  | Loop_gate -> "loop"
  | Entry_gate -> "entry"

let decision_to_json scope d =
  let fields =
    match d with
    | Pattern_verdict p ->
      [ ("event", J.Str "pattern_verdict");
        ("func", J.Str p.pv_func);
        ("verdict", J.Str p.pv_verdict);
        ("kind", opt_str p.pv_kind);
        ("origin", opt_str p.pv_origin);
        ("reason", opt_str p.pv_reason) ]
    | Gating_insert g ->
      [ ("event", J.Str "gating_insert");
        ("func", J.Str g.gi_func);
        ("site", J.Str g.gi_site);
        ("kind", J.Str (gate_kind_to_string g.gi_kind));
        ("components", str_list g.gi_components);
        ("suppressed_by_enclosing", str_list g.gi_suppressed);
        ("below_break_even", str_list g.gi_below_break_even);
        ("est_cycles", J.Num g.gi_est_cycles);
        ("landings", J.Num (float_of_int g.gi_landings)) ]
    | Gating_merge m ->
      [ ("event", J.Str "gating_merge");
        ("func", J.Str m.gm_func);
        ("block", J.Num (float_of_int m.gm_block));
        ("rule", J.Str m.gm_rule);
        ("components", str_list m.gm_components) ]
    | Dvfs_decision v ->
      [ ("event", J.Str "dvfs_decision");
        ("func", J.Str v.dv_func);
        ("site", J.Str v.dv_site);
        ("core_class", J.Str v.dv_core_class);
        ("ladder", J.Str v.dv_ladder);
        ("mu", J.Num v.dv_mu);
        ("est_cycles", J.Num v.dv_est_cycles);
        ( "chosen_level",
          match v.dv_chosen with
          | Some l -> J.Num (float_of_int l)
          | None -> J.Null );
        ( "rejected",
          J.List
            (List.map
               (fun (point, why) ->
                 J.Obj [ ("point", J.Str point); ("reason", J.Str why) ])
               v.dv_rejected) );
        ("reason", opt_str v.dv_reason) ]
    | Pass_delta p ->
      [ ("event", J.Str "pass_delta");
        ("pass", J.Str p.pd_pass);
        ("run", J.Num (float_of_int p.pd_run));
        ("changes", J.Num (float_of_int p.pd_changes));
        ("instrs_before", J.Num (float_of_int p.pd_instrs_before));
        ("instrs_after", J.Num (float_of_int p.pd_instrs_after)) ]
  in
  J.Obj (("scope", J.Str scope) :: fields)

let sim_to_json scope sr =
  J.Obj
    [ ("scope", J.Str scope);
      ("duration_ns", J.Num sr.sr_duration_ns);
      ("instrs", J.Num (float_of_int sr.sr_instrs));
      ("implicit_wakeups", J.Num (float_of_int sr.sr_implicit_wakeups));
      ("gate_transitions", J.Num (float_of_int sr.sr_gate_transitions));
      ("dvfs_transitions", J.Num (float_of_int sr.sr_dvfs_transitions));
      ("sim_predecode", J.Bool sr.sr_predecode);
      ("energy", sr.sr_energy);
      ("per_core_energy", J.List sr.sr_core_energy) ]

let count pred xs =
  List.fold_left (fun n (_, d) -> if pred d then n + 1 else n) 0 xs

let to_json t =
  let ds = decisions t in
  let ss = sims t in
  let ws = warnings t in
  let summary =
    J.Obj
      [ ( "pattern_verdicts",
          J.Num
            (float_of_int
               (count (function Pattern_verdict _ -> true | _ -> false) ds))
        );
        ( "gating_inserts",
          J.Num
            (float_of_int
               (count (function Gating_insert _ -> true | _ -> false) ds)) );
        ( "gating_merges",
          J.Num
            (float_of_int
               (count (function Gating_merge _ -> true | _ -> false) ds)) );
        ( "dvfs_decisions",
          J.Num
            (float_of_int
               (count (function Dvfs_decision _ -> true | _ -> false) ds)) );
        ( "pass_deltas",
          J.Num
            (float_of_int
               (count (function Pass_delta _ -> true | _ -> false) ds)) );
        ("simulations", J.Num (float_of_int (List.length ss)));
        ("implicit_wakeups", J.Num (float_of_int (implicit_wakeups t))) ]
  in
  J.Obj
    [ ("schema", J.Str "lowpower-power-report/1");
      ("summary", summary);
      ("decisions", J.List (List.map (fun (s, d) -> decision_to_json s d) ds));
      ("simulations", J.List (List.map (fun (s, sr) -> sim_to_json s sr) ss));
      ("warnings", str_list ws) ]

let to_string t = J.to_string (to_json t)

let write t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string t));
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Human-readable audit                                                *)
(* ------------------------------------------------------------------ *)

let decision_to_text d =
  let comps cs = String.concat "," cs in
  match d with
  | Pattern_verdict p ->
    let extra =
      match (p.pv_verdict, p.pv_kind, p.pv_reason) with
      | "accepted", Some k, _ ->
        Printf.sprintf "%s%s" k
          (match p.pv_origin with
          | Some o -> Printf.sprintf " (%s)" o
          | None -> "")
      | _, _, Some r -> r
      | _ -> ""
    in
    Printf.sprintf "pattern  %-12s %s %s" p.pv_func p.pv_verdict extra
  | Gating_insert g ->
    let notes =
      (if g.gi_suppressed = [] then []
       else
         [ Printf.sprintf "suppressed-by-enclosing: %s" (comps g.gi_suppressed) ])
      @
      if g.gi_below_break_even = [] then []
      else
        [ Printf.sprintf "below-break-even: %s" (comps g.gi_below_break_even) ]
    in
    Printf.sprintf "gate     %-12s %-10s off={%s} est=%.0fcy landings=%d%s"
      g.gi_func g.gi_site
      (comps g.gi_components)
      g.gi_est_cycles g.gi_landings
      (if notes = [] then "" else " [" ^ String.concat "; " notes ^ "]")
  | Gating_merge m ->
    Printf.sprintf "merge    %-12s b%-9d %s {%s}" m.gm_func m.gm_block
      m.gm_rule (comps m.gm_components)
  | Dvfs_decision v ->
    let verdict =
      match v.dv_chosen with
      | Some l -> Printf.sprintf "level=%d" l
      | None -> (
        match v.dv_reason with
        | Some r -> Printf.sprintf "nominal (%s)" r
        | None -> "nominal")
    in
    let rejected =
      if v.dv_rejected = [] then ""
      else
        Printf.sprintf " rejected=[%s]"
          (String.concat "; "
             (List.map
                (fun (p, why) -> Printf.sprintf "%s: %s" p why)
                v.dv_rejected))
    in
    Printf.sprintf "dvfs     %-12s %-10s class=%s mu=%.2f est=%.0fcy -> %s%s"
      v.dv_func v.dv_site v.dv_core_class v.dv_mu v.dv_est_cycles verdict
      rejected
  | Pass_delta p ->
    Printf.sprintf "pass     %-12s run=%d changes=%d instrs %d -> %d"
      p.pd_pass p.pd_run p.pd_changes p.pd_instrs_before p.pd_instrs_after

let to_text t =
  let buf = Buffer.create 1024 in
  let ds = decisions t in
  let ss = sims t in
  let scopes =
    List.sort_uniq String.compare
      (List.map fst ds @ List.map fst ss)
  in
  List.iter
    (fun scope ->
      Buffer.add_string buf
        (Printf.sprintf "== %s ==\n"
           (if scope = "" then "(no scope)" else scope));
      List.iter
        (fun (s, d) ->
          if s = scope then
            Buffer.add_string buf ("  " ^ decision_to_text d ^ "\n"))
        ds;
      List.iter
        (fun (s, sr) ->
          if s = scope then begin
            Buffer.add_string buf
              (Printf.sprintf
                 "  sim      duration=%.1fns instrs=%d gates=%d dvfs=%d \
                  implicit-wakeups=%d stepper=%s\n"
                 sr.sr_duration_ns sr.sr_instrs sr.sr_gate_transitions
                 sr.sr_dvfs_transitions sr.sr_implicit_wakeups
                 (if sr.sr_predecode then "predecode" else "interp"));
            (match J.member "total_nj" sr.sr_energy with
            | Some (J.Num total) ->
              Buffer.add_string buf
                (Printf.sprintf "  energy   total=%.1fnJ" total);
              (match J.member "by_category" sr.sr_energy with
              | Some (J.Obj cats) ->
                let nonzero =
                  List.filter_map
                    (fun (k, v) ->
                      match v with
                      | J.Num e when e > 0.0 ->
                        Some (Printf.sprintf "%s=%.1f" k e)
                      | _ -> None)
                    cats
                in
                if nonzero <> [] then
                  Buffer.add_string buf
                    (Printf.sprintf " [%s]" (String.concat "; " nonzero))
              | _ -> ());
              Buffer.add_char buf '\n'
            | _ -> ())
          end)
        ss)
    scopes;
  let ws = warnings t in
  if ws <> [] then begin
    Buffer.add_string buf "== warnings ==\n";
    List.iter (fun w -> Buffer.add_string buf ("  " ^ w ^ "\n")) ws
  end;
  Buffer.contents buf
