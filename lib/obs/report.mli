(** Power-decision audit report.

    Where {!Obs} records {e where time went}, a [Report.t] records {e why
    the compiler did what it did} and {e where the nanojoules went}: every
    power-relevant decision the pipeline takes (pattern verdicts, gating
    insertions, Sink-N-Hoist merges, DVFS operating-point choices, per-pass
    IR deltas) is emitted as a typed event, and every simulation appends
    its full energy-ledger breakdown.  The report exports as JSON
    ([lpcc run --report FILE]) and as a human-readable audit
    ([lpcc explain]); the schema is documented in docs/OBSERVABILITY.md.

    Like the span recorder, the {!disabled} singleton makes every
    operation a no-op, so emission points cost nothing when no report was
    requested, and all operations are safe from several domains at once
    (the evaluation matrix emits from its whole pool).

    Events deliberately carry no wall-clock timestamps: for a fixed
    (source, machine, options) triple the report is byte-stable, which is
    what makes the golden-report test and the jobs=1 vs jobs=4
    determinism check possible. *)

(** {2 Decision events} *)

type gate_kind = Loop_gate | Entry_gate

type decision =
  | Pattern_verdict of {
      pv_func : string;
      pv_verdict : string;      (** ["accepted"] or ["rejected"] *)
      pv_kind : string option;  (** pattern kind, accepted instances *)
      pv_origin : string option;   (** ["annotated"] / ["inferred"] *)
      pv_reason : string option;   (** rejection reason *)
    }
  | Gating_insert of {
      gi_func : string;
      gi_site : string;         (** ["loop@b<header>"] or ["entry"] *)
      gi_kind : gate_kind;
      gi_components : string list;     (** components actually gated *)
      gi_suppressed : string list;
          (** idle candidates an enclosing loop's gate already covers *)
      gi_below_break_even : string list;
          (** idle candidates whose window is below break-even *)
      gi_est_cycles : float;    (** loop duration estimate; 0 for entry *)
      gi_landings : int;        (** exit landings given a [pg_on] *)
    }
  | Gating_merge of {
      gm_func : string;
      gm_block : int;
      gm_rule : string;
          (** ["cancel-stay-off"], ["drop-short-region"] or
              ["merge-adjacent"] — the three Sink-N-Hoist rules *)
      gm_components : string list;
    }
  | Dvfs_decision of {
      dv_func : string;
      dv_site : string;         (** ["loop@b<header>"] *)
      dv_core_class : string;
          (** core class whose ladder the decision used (class names
              joined with ["+"] when the function runs on several) *)
      dv_ladder : string;       (** that ladder, compactly described *)
      dv_mu : float;            (** measured memory-bound fraction *)
      dv_est_cycles : float;
      dv_chosen : int option;   (** chosen level; [None] = stays nominal *)
      dv_rejected : (string * string) list;
          (** rejected operating points with reasons *)
      dv_reason : string option;   (** why the loop keeps nominal *)
    }
  | Pass_delta of {
      pd_pass : string;
      pd_run : int;             (** 1-based run count of this pass *)
      pd_changes : int;
      pd_instrs_before : int;
      pd_instrs_after : int;
    }

(** Per-simulation record: headline counters plus the full energy-ledger
    breakdown (machine-wide and per-core) as {!Lp_util.Json.t}. *)
type sim_record = {
  sr_duration_ns : float;
  sr_instrs : int;
  sr_implicit_wakeups : int;
  sr_gate_transitions : int;
  sr_dvfs_transitions : int;
  sr_energy : Lp_util.Json.t;        (** machine-wide ledger *)
  sr_core_energy : Lp_util.Json.t list;  (** one ledger per used core *)
  sr_predecode : bool;
      (** whether the closure-compiled stepper produced these numbers
          (false = interpretive reference mode, the
          [--no-sim-predecode] escape hatch) *)
}

type t

(** Every operation is a no-op (and {!enabled} is [false]). *)
val disabled : t

val create : unit -> t
val enabled : t -> bool

(** {2 Scopes}

    A scope labels every event emitted while it is installed — the
    workload (and configuration) a matrix cell is evaluating, the file
    [lpcc run] was given, a fuzzer seed.  Scopes are per-domain (the
    evaluation matrix emits from its whole pool at once). *)

val with_scope : string -> (unit -> 'a) -> 'a

(** The installed scope, [""] outside {!with_scope}. *)
val current_scope : unit -> string

(** {2 Emission} *)

(** Record a decision under the current scope. *)
val add : t -> decision -> unit

(** Record a simulation's energy/counter record under the current
    scope. *)
val add_sim : t -> sim_record -> unit

(** Record a warning (e.g. nonzero implicit wakeups). *)
val warn : t -> string -> unit

(** {2 Inspection} *)

(** All (scope, decision) pairs, oldest first. *)
val decisions : t -> (string * decision) list

val sims : t -> (string * sim_record) list
val warnings : t -> string list

(** Total implicit wakeups over every recorded simulation. *)
val implicit_wakeups : t -> int

(** {2 Export} *)

(** The JSON document (schema [lowpower-power-report/1]).  Events are
    stably sorted by scope, so a report collected over a parallel
    evaluation matrix is deterministic whatever the pool size; within a
    scope, emission order (pipeline order) is preserved. *)
val to_json : t -> Lp_util.Json.t

val to_string : t -> string
val write : t -> path:string -> unit

(** Human-readable audit (the [lpcc explain] view): decisions grouped by
    scope in pipeline order, then the energy breakdown and warnings. *)
val to_text : t -> string
