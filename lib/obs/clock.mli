(** Monotonic clock abstraction for the telemetry layer.

    Every timestamp the observability layer records flows through one
    [t]: a function returning nanoseconds since an arbitrary origin.
    Production code uses {!monotonic}; tests inject {!fixed_step} so
    span durations — and therefore the exported Chrome trace JSON — are
    bit-for-bit reproducible. *)

(** A clock: nanoseconds since an arbitrary (per-clock) origin. *)
type t = unit -> float

(** The best monotonic-ish source available without C stubs:
    [Unix.gettimeofday], rebased so the first reading of the process is
    near zero.  Resolution is microseconds; good enough to attribute
    wall-clock to compiler phases and matrix cells. *)
val monotonic : t

(** [fixed_step ?start ~step_ns ()] returns a deterministic clock whose
    n-th reading is [start + n * step_ns].  For golden tests. *)
val fixed_step : ?start:float -> step_ns:float -> unit -> t
