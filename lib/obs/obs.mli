(** Pipeline telemetry: hierarchical tracing spans, named counters and
    gauges, exported as Chrome trace-event JSON plus a human-readable
    summary.

    One {!t} is a recorder.  The driver threads it through the pipeline
    inside [Lowpower.Compile.ctx]; with the {!disabled} recorder every
    operation is a no-op that reads no clock and takes no lock, so code
    can be instrumented unconditionally ("zero overhead when off").

    Spans form two timelines, distinguished by the Chrome [pid]:

    - {!wall_pid}: real (monotonic) time, one [tid] per OCaml domain —
      compile phases, per-pass and per-function work, matrix cells;
    - {!sim_pid}: simulated nanoseconds, one [tid] per modelled core —
      what each core of the machine model was busy with.

    All operations are safe to call from several domains at once; the
    recorder aggregates under one mutex.  Counter values are sums, so
    aggregation is deterministic whatever the domain interleaving. *)

(** Argument payload attached to a span ([args] in the Chrome JSON). *)
type arg = Str of string | Int of int | Float of float

type span = {
  sp_name : string;
  sp_cat : string;          (** taxonomy: see docs/OBSERVABILITY.md *)
  sp_pid : int;             (** {!wall_pid} or {!sim_pid} *)
  sp_tid : int;             (** domain id (wall) / core id (simulated) *)
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_depth : int;           (** open ancestors on the same track at entry *)
  sp_args : (string * arg) list;
}

type t

val wall_pid : int
val sim_pid : int

(** The always-off recorder: every operation returns immediately. *)
val disabled : t

(** A fresh enabled recorder.  [clock] defaults to {!Clock.monotonic};
    tests inject {!Clock.fixed_step} for reproducible output. *)
val create : ?clock:Clock.t -> unit -> t

val enabled : t -> bool

(** {2 Spans} *)

(** [span t ~cat name f] times [f] on the calling domain's wall track,
    recording a completed span even when [f] raises.  Disabled recorder:
    tail-calls [f]. *)
val span : t -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** Record a span measured externally (e.g. in simulated time, or a
    duration shared with another consumer such as the pass-stats table).
    [pid] defaults to {!wall_pid}; [tid] defaults to the calling domain
    on the wall track and must be given for {!sim_pid}.  The span's
    depth is the number of [span] calls currently open on that wall
    track (0 on simulated tracks). *)
val emit_span :
  t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  ?pid:int ->
  ?tid:int ->
  start_ns:float ->
  dur_ns:float ->
  string ->
  unit

(** The recorder's clock, for callers that measure a duration once and
    both aggregate it and emit it as a span.  Reads the real clock even
    while recording is disabled, so timings (e.g. pass statistics) do
    not change shape when tracing turns on. *)
val now_ns : t -> float

(** {2 Counters and gauges} *)

(** [add t name n] adds [n] to the named counter (created at 0). *)
val add : t -> string -> int -> unit

(** [set_gauge t name v] records the latest value of a gauge. *)
val set_gauge : t -> string -> float -> unit

(** {2 Histograms}

    Log₂-bucketed histograms for latency-style distributions: bucket
    [i] counts values in [2^(i-1), 2^i) (everything below 1 in bucket
    0), so quantile estimates are upper bounds within a factor of 2.
    Bucket counts are sums, so concurrent recording and merging are
    deterministic whatever the domain interleaving.  With the
    {!disabled} recorder, {!record_hist} is a no-op that takes no
    lock. *)

type hist

(** A fresh standalone histogram (all zero), e.g. a merge target. *)
val hist_create : unit -> hist

(** [record_hist t name v] adds the sample [v] to the named histogram
    (created empty).  No-op when disabled. *)
val record_hist : t -> string -> float -> unit

(** Snapshot of one named histogram; [None] if never recorded. *)
val hist_of : t -> string -> hist option

(** Snapshots of all histograms, sorted by name. *)
val hists : t -> (string * hist) list

(** Add one sample to a standalone histogram. *)
val hist_record : hist -> float -> unit

(** Add [src]'s counts and sum into [into]. *)
val hist_merge_into : into:hist -> hist -> unit

val hist_count : hist -> int

(** Sum of the recorded samples (exact, not bucketed). *)
val hist_sum : hist -> float

(** [hist_quantile h q] is an upper bound on the [q]-quantile (the
    upper edge of the bucket the rank falls in); [0.0] when empty. *)
val hist_quantile : hist -> float -> float

(** One-line rendering: count, sum, p50/p90/p99 upper bounds. *)
val hist_render : hist -> string

(** {2 Inspection and export} *)

(** Completed spans, oldest first. *)
val spans : t -> span list

val span_count : t -> int

(** Counters, sorted by name (deterministic across domain schedules). *)
val counters : t -> (string * int) list

(** Gauges, sorted by name. *)
val gauges : t -> (string * float) list

(** Chrome trace-event JSON (loads in chrome://tracing and Perfetto):
    an object with a [traceEvents] array of ["X"] complete events (one
    per span, [ts]/[dur] in microseconds), ["C"] counter samples and
    ["M"] process-name metadata. *)
val chrome_string : t -> string

val write_chrome : t -> path:string -> unit

(** Aggregated human-readable summary: per-(cat, name) span count and
    total milliseconds, then counters and gauges.  Sorted by name. *)
val summary : t -> string
