type t = unit -> float

(* Rebase on the first reading so exported traces start near ts=0
   regardless of epoch; gettimeofday is the finest-grained portable
   source the stdlib offers (mtime-style CLOCK_MONOTONIC needs stubs). *)
let origin = Unix.gettimeofday ()

let monotonic () = (Unix.gettimeofday () -. origin) *. 1e9

let fixed_step ?(start = 0.0) ~step_ns () : t =
  let n = ref 0 in
  fun () ->
    let v = start +. (float_of_int !n *. step_ns) in
    incr n;
    v
