(** MAC fusion: rewrite [t := mul a, b; ...; d := add x, t] into
    [d := mac x, a, b] when [t] has no other use, moving multiply-add
    chains onto the MAC unit.

    Besides the latency win, fusion concentrates work on one wide unit so
    that the multiplier can be power-gated in MAC-heavy kernels — the
    interplay the evaluation's ablation (F6/T5) quantifies. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog

(** Count uses of each register across the whole function. *)
let use_counts (f : Prog.func) : (Ir.reg, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  let bump r = Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)) in
  Prog.iter_blocks f (fun b ->
      List.iter (fun i -> List.iter bump (Ir.uses i)) b.Ir.instrs;
      List.iter bump (Ir.term_uses b.Ir.term));
  tbl

let run_func (f : Prog.func) : int =
  let uses = use_counts f in
  let fused = ref 0 in
  Prog.iter_blocks f (fun b ->
      (* map from reg -> (a, b) for single-use muls defined in this block
         and not yet invalidated *)
      let muls : (Ir.reg, Ir.operand * Ir.operand) Hashtbl.t = Hashtbl.create 8 in
      let invalidate_reg r =
        (* a redefinition of r kills any pending mul reading or producing r *)
        Hashtbl.remove muls r;
        Hashtbl.iter
          (fun d (a, b2) ->
            let mentions = function Ir.Reg x -> x = r | Ir.Imm _ -> false in
            if mentions a || mentions b2 then Hashtbl.remove muls d)
          (Hashtbl.copy muls)
      in
      let keep =
        List.filter_map
          (fun (i : Ir.instr) ->
            match i.Ir.idesc with
            | Ir.Binop (Ir.Mul, d, a, b2)
              when Hashtbl.find_opt uses d = Some 1 ->
              Option.iter (fun r -> invalidate_reg r) (Ir.def i);
              Hashtbl.replace muls d (a, b2);
              Some i
            | Ir.Binop (Ir.Add, d, Ir.Reg t, x)
              when Hashtbl.mem muls t && (match x with Ir.Reg r -> r <> t | Ir.Imm _ -> true) -> (
              match Hashtbl.find_opt muls t with
              | Some (a, b2) ->
                incr fused;
                Hashtbl.remove muls t;
                i.Ir.idesc <- Ir.Mac (d, x, a, b2);
                Option.iter invalidate_reg (Ir.def i);
                Some i
              | None -> Some i)
            | Ir.Binop (Ir.Add, d, x, Ir.Reg t) when Hashtbl.mem muls t -> (
              match Hashtbl.find_opt muls t with
              | Some (a, b2) ->
                incr fused;
                Hashtbl.remove muls t;
                i.Ir.idesc <- Ir.Mac (d, x, a, b2);
                Option.iter invalidate_reg (Ir.def i);
                Some i
              | None -> Some i)
            | _ ->
              Option.iter invalidate_reg (Ir.def i);
              Some i)
          b.Ir.instrs
      in
      b.Ir.instrs <- keep);
  (* the fused muls are now dead (their single use was replaced); a DCE
     round removes them *)
  if !fused > 0 then Prog.touch f;
  !fused

let pass : Pass.func_pass =
  {
    Pass.name = "mac-fusion";
    (* rewrites instructions in place without touching terminators, but
       register uses move (the mul's temporary dies), so liveness falls *)
    preserves = Lp_analysis.Manager.[ Cfg; Dominators; Loops ];
    run = (fun _ _ f -> run_func f);
  }
