(** Pass manager: runs named function passes over a program, collecting
    per-pass statistics (time, number of rewrites) for the compile-stats
    table (T5). *)

module Prog = Lp_ir.Prog

type stats = {
  pass_name : string;
  mutable runs : int;
  mutable changes : int;
  mutable seconds : float;
}

type func_pass = {
  name : string;
  run : Prog.t -> Prog.func -> int;  (** returns number of changes *)
}

type manager = {
  mutable all_stats : stats list;
  on_pass : (string -> Prog.t -> unit) option;
      (** called after every pass run (fuzzing hooks verification in
          here); may raise to abort the compile *)
}

let create_manager ?on_pass () = { all_stats = []; on_pass }

let stats_for m name =
  match List.find_opt (fun s -> s.pass_name = name) m.all_stats with
  | Some s -> s
  | None ->
    let s = { pass_name = name; runs = 0; changes = 0; seconds = 0.0 } in
    m.all_stats <- m.all_stats @ [ s ];
    s

(** Run one pass over every function; returns total changes. *)
let run_pass m (p : func_pass) (prog : Prog.t) : int =
  let s = stats_for m p.name in
  let t0 = Sys.time () in
  let changes =
    List.fold_left (fun acc f -> acc + p.run prog f) 0 (Prog.funcs prog)
  in
  s.runs <- s.runs + 1;
  s.changes <- s.changes + changes;
  s.seconds <- s.seconds +. (Sys.time () -. t0);
  Lp_util.Fault.check Lp_util.Fault.Post_pass ~key:p.name;
  (match m.on_pass with Some f -> f p.name prog | None -> ());
  changes

(** Run a list of passes repeatedly until a full sweep changes nothing
    (bounded by [max_rounds]). *)
let run_to_fixpoint ?(max_rounds = 8) m passes prog =
  let rec loop round =
    if round < max_rounds then begin
      let changed =
        List.fold_left (fun acc p -> acc + run_pass m p prog) 0 passes
      in
      if changed > 0 then loop (round + 1)
    end
  in
  loop 0

let stats m = m.all_stats
