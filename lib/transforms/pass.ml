(** Pass manager: runs named function passes over a program, collecting
    per-pass statistics (time, number of rewrites) for the compile-stats
    table (T5), and emitting telemetry spans when the manager's recorder
    is enabled.

    Every pass runs against a shared {!Lp_analysis.Manager}: it queries
    analyses (CFG, dominators, liveness, loops, estimates) through the
    manager instead of computing them, and declares in [preserves] which
    of those analyses its rewrites keep valid.  After a pass changes a
    function, the manager drops that function's cached analyses except
    the preserved ones — so a later pass (or a later sweep of a
    fixpoint) gets cache hits exactly where nothing relevant moved.

    Timing has one source: every [run_pass] takes exactly one span
    measurement (via the recorder's monotonic clock) and the [stats]
    list is the per-pass aggregation of those spans, so the T5 table and
    a [--trace] dump can never disagree.  With the disabled recorder the
    measurement still happens (T5 needs it) but no span is stored. *)

module Prog = Lp_ir.Prog
module Obs = Lp_obs.Obs
module Report = Lp_obs.Report
module Manager = Lp_analysis.Manager

type stats = {
  pass_name : string;
  mutable runs : int;
  mutable changes : int;
  mutable seconds : float;
}

type func_pass = {
  name : string;
  preserves : Manager.kind list;
      (** analyses still valid for a function this pass changed *)
  run : Manager.t -> Prog.t -> Prog.func -> int;
      (** returns number of changes *)
}

type manager = {
  by_name : (string, stats) Hashtbl.t;
  mutable order : string list;  (** first-seen pass names, reversed *)
  obs : Obs.t;
  report : Report.t;
      (** per-pass IR deltas land in the power-decision audit report *)
  on_pass : (string -> Prog.t -> unit) option;
      (** called after every pass run (fuzzing hooks verification in
          here); may raise to abort the compile *)
  caching : bool;  (** analysis managers memoize (LP_NO_ANALYSIS_CACHE off) *)
  deadline : Lp_util.Deadline.t;
      (** cooperative per-request deadline, checked before every pass and
          before every per-function run; expiry raises [E_DEADLINE] *)
  mutable am : (Prog.t * Manager.t) option;
      (** analysis manager of the program last run, created lazily *)
}

let create_manager ?(obs = Obs.disabled) ?(report = Report.disabled)
    ?(caching = true) ?(deadline = Lp_util.Deadline.none) ?on_pass () =
  {
    by_name = Hashtbl.create 16;
    order = [];
    obs;
    report;
    on_pass;
    caching;
    deadline;
    am = None;
  }

(** The analysis manager serving [prog] (created on first use; one pass
    manager normally drives one program, but tests reuse them). *)
let analysis_manager m (prog : Prog.t) : Manager.t =
  match m.am with
  | Some (p, am) when p == prog -> am
  | Some _ | None ->
    let am = Manager.create ~obs:m.obs ~caching:m.caching prog in
    m.am <- Some (prog, am);
    am

let stats_for m name =
  match Hashtbl.find_opt m.by_name name with
  | Some s -> s
  | None ->
    let s = { pass_name = name; runs = 0; changes = 0; seconds = 0.0 } in
    Hashtbl.replace m.by_name name s;
    m.order <- name :: m.order;
    s

(** Run one pass over every function; returns total changes.  Functions
    the pass changed get their cached analyses invalidated (minus the
    pass's [preserves] set) before the next function runs. *)
let run_pass m (p : func_pass) (prog : Prog.t) : int =
  let s = stats_for m p.name in
  let am = analysis_manager m prog in
  let traced = Obs.enabled m.obs in
  let audited = Report.enabled m.report in
  let instrs_before = if audited then Prog.total_instrs prog else 0 in
  let run_func f =
    Lp_util.Deadline.check m.deadline;
    let n = p.run am prog f in
    if n > 0 then Manager.invalidate am ~preserves:p.preserves f;
    n
  in
  let t0 = Obs.now_ns m.obs in
  let changes =
    if traced then
      List.fold_left
        (fun acc f ->
          acc
          + Obs.span m.obs ~cat:"func"
              ~args:[ ("pass", Obs.Str p.name) ]
              f.Prog.fname
              (fun () -> run_func f))
        0 (Prog.funcs prog)
    else List.fold_left (fun acc f -> acc + run_func f) 0 (Prog.funcs prog)
  in
  let dur = Obs.now_ns m.obs -. t0 in
  if traced then
    Obs.emit_span m.obs ~cat:"pass"
      ~args:[ ("changes", Obs.Int changes); ("runs", Obs.Int (s.runs + 1)) ]
      ~start_ns:t0 ~dur_ns:dur p.name;
  s.runs <- s.runs + 1;
  s.changes <- s.changes + changes;
  s.seconds <- s.seconds +. (dur *. 1e-9);
  if audited && changes > 0 then
    Report.add m.report
      (Report.Pass_delta
         {
           pd_pass = p.name;
           pd_run = s.runs;
           pd_changes = changes;
           pd_instrs_before = instrs_before;
           pd_instrs_after = Prog.total_instrs prog;
         });
  Lp_util.Fault.check Lp_util.Fault.Post_pass ~key:p.name;
  (match m.on_pass with Some f -> f p.name prog | None -> ());
  changes

(** Run a list of passes repeatedly until a full sweep changes nothing
    (bounded by [max_rounds]).  Each sweep gets a [fixpoint] round
    span. *)
let run_to_fixpoint ?(max_rounds = 8) m passes prog =
  let sweep round =
    Obs.span m.obs ~cat:"fixpoint"
      ~args:[ ("round", Obs.Int round) ]
      "round"
      (fun () ->
        List.fold_left (fun acc p -> acc + run_pass m p prog) 0 passes)
  in
  let rec loop round =
    if round < max_rounds then begin
      let changed = sweep round in
      if changed > 0 then loop (round + 1)
    end
  in
  loop 0

(** Per-pass statistics in first-use order (aggregated from the span
    measurements of every [run_pass]). *)
let stats m =
  List.rev_map (fun name -> Hashtbl.find m.by_name name) m.order
