(** CFG cleanup: unreachable-block pruning, jump threading through empty
    blocks, straight-line block merging, and trivial-branch collapsing.

    Running this between gating insertion and the Sink-N-Hoist merge is
    load-bearing: it fuses the [pg_on]-on-exit block of one loop with the
    [pg_off]-preheader of the next, turning the cross-region merge into a
    local rewrite. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Cfg = Lp_analysis.Cfg
module Manager = Lp_analysis.Manager

(** Collapse [Br c l l] into [Jmp l]. *)
let collapse_trivial_br (f : Prog.func) : int =
  let n = ref 0 in
  Prog.iter_blocks f (fun b ->
      match b.Ir.term with
      | Ir.Br (_, l1, l2) when l1 = l2 ->
        incr n;
        b.Ir.term <- Ir.Jmp l1
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> ());
  if !n > 0 then Prog.touch f;
  !n

(** Thread jumps through empty forwarding blocks (no instructions,
    terminator [Jmp l]).  The entry block is never removed. *)
let thread_empty (f : Prog.func) : int =
  let n = ref 0 in
  let forward = Hashtbl.create 8 in
  Prog.iter_blocks f (fun b ->
      match (b.Ir.instrs, b.Ir.term) with
      | ([], Ir.Jmp l) when b.Ir.bid <> f.Prog.entry && l <> b.Ir.bid ->
        Hashtbl.replace forward b.Ir.bid l
      | _ -> ());
  (* resolve chains, guarding against cycles *)
  let rec resolve seen l =
    match Hashtbl.find_opt forward l with
    | Some next when not (List.mem next seen) -> resolve (l :: seen) next
    | Some _ | None -> l
  in
  Prog.iter_blocks f (fun b ->
      let new_term =
        match b.Ir.term with
        | Ir.Jmp l ->
          let l' = resolve [ b.Ir.bid ] l in
          if l' <> l then incr n;
          Ir.Jmp l'
        | Ir.Br (c, l1, l2) ->
          let l1' = resolve [ b.Ir.bid ] l1 in
          let l2' = resolve [ b.Ir.bid ] l2 in
          if l1' <> l1 || l2' <> l2 then incr n;
          Ir.Br (c, l1', l2')
        | Ir.Ret _ as t -> t
      in
      b.Ir.term <- new_term);
  if !n > 0 then Prog.touch f;
  !n

(** Merge [b -> c] when [b] ends in [Jmp c] and [c] has exactly one
    predecessor (and is not the entry).  The CFG is re-queried through
    the manager after every merge (each merge touches [f], so the query
    recomputes; between two clean sweeps it is served from cache). *)
let merge_linear (am : Manager.t) (f : Prog.func) : int =
  let n = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let cfg = Manager.cfg am f in
    let merged = ref false in
    List.iter
      (fun bid ->
        if not !merged then begin
          let b = Prog.block f bid in
          match b.Ir.term with
          | Ir.Jmp c_id
            when c_id <> f.Prog.entry && c_id <> bid
                 && Cfg.preds cfg c_id = [ bid ] ->
            let c = Prog.block f c_id in
            b.Ir.instrs <- b.Ir.instrs @ c.Ir.instrs;
            b.Ir.term <- c.Ir.term;
            f.Prog.block_order <-
              List.filter (fun l -> l <> c_id) f.Prog.block_order;
            Hashtbl.remove f.Prog.blocks c_id;
            Prog.touch f;
            incr n;
            merged := true;
            changed := true
          | Ir.Jmp _ | Ir.Br _ | Ir.Ret _ -> ()
        end)
      (List.map (fun b -> b.Ir.bid) (Prog.blocks_in_order f))
  done;
  !n

let run_func (am : Manager.t) (f : Prog.func) : int =
  let c1 = collapse_trivial_br f in
  let c2 = thread_empty f in
  let c3 = Cfg.prune_unreachable_of (Manager.cfg am f) in
  let c4 = merge_linear am f in
  c1 + c2 + c3 + c4

let pass : Pass.func_pass =
  {
    Pass.name = "simplify-cfg";
    preserves = [];
    run = (fun am _ f -> run_func am f);
  }
