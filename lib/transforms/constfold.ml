(** Local constant propagation, folding and algebraic simplification.

    Operates within basic blocks (the IR is not SSA, so cross-block
    propagation would require a reaching-definitions proof; block scope
    captures nearly everything the lowering emits, because every literal
    becomes an [Imm] already and most temporaries are single-use). *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog

let fold_binop op (a : Ir.const) (b : Ir.const) : Ir.const option =
  match (a, b) with
  | (Ir.Cint x, Ir.Cint y) -> (
    (* operands wrap to 32 bits before the operation, exactly as the
       simulator's [Value.of_const] does — the two must agree bitwise *)
    let x = Lp_util.Int32_sem.wrap32 x and y = Lp_util.Int32_sem.wrap32 y in
    let wrap v = Ir.Cint (Lp_util.Int32_sem.wrap32 v) in
    match op with
    | Ir.Add -> Some (wrap (x + y))
    | Ir.Sub -> Some (wrap (x - y))
    | Ir.Mul -> Some (wrap (x * y))
    | Ir.Div -> if y = 0 then None else Some (wrap (x / y))
    | Ir.Mod -> if y = 0 then None else Some (wrap (x mod y))
    | Ir.Shl -> Some (wrap (x lsl (y land 31)))
    | Ir.Shr -> Some (wrap (x asr (y land 31)))
    | Ir.And -> Some (wrap (x land y))
    | Ir.Or -> Some (wrap (x lor y))
    | Ir.Xor -> Some (wrap (x lxor y))
    | Ir.Lt -> Some (Ir.Cint (if x < y then 1 else 0))
    | Ir.Le -> Some (Ir.Cint (if x <= y then 1 else 0))
    | Ir.Gt -> Some (Ir.Cint (if x > y then 1 else 0))
    | Ir.Ge -> Some (Ir.Cint (if x >= y then 1 else 0))
    | Ir.Eq -> Some (Ir.Cint (if x = y then 1 else 0))
    | Ir.Ne -> Some (Ir.Cint (if x <> y then 1 else 0))
    | _ -> None)
  | (Ir.Cfloat x, Ir.Cfloat y) -> (
    match op with
    | Ir.Fadd -> Some (Ir.Cfloat (x +. y))
    | Ir.Fsub -> Some (Ir.Cfloat (x -. y))
    | Ir.Fmul -> Some (Ir.Cfloat (x *. y))
    | Ir.Fdiv -> Some (Ir.Cfloat (x /. y))
    | Ir.Flt -> Some (Ir.Cint (if x < y then 1 else 0))
    | Ir.Fle -> Some (Ir.Cint (if x <= y then 1 else 0))
    | Ir.Fgt -> Some (Ir.Cint (if x > y then 1 else 0))
    | Ir.Fge -> Some (Ir.Cint (if x >= y then 1 else 0))
    | Ir.Feq -> Some (Ir.Cint (if x = y then 1 else 0))
    | Ir.Fne -> Some (Ir.Cint (if x <> y then 1 else 0))
    | _ -> None)
  | (Ir.Cint _, Ir.Cfloat _) | (Ir.Cfloat _, Ir.Cint _) -> None

(** Algebraic identities yielding a move. *)
let simplify_binop op a b : Ir.operand option =
  let zero = Ir.Imm (Ir.Cint 0) in
  match (op, a, b) with
  | (Ir.Add, x, Ir.Imm (Ir.Cint 0)) | (Ir.Add, Ir.Imm (Ir.Cint 0), x) -> Some x
  | (Ir.Sub, x, Ir.Imm (Ir.Cint 0)) -> Some x
  | (Ir.Mul, x, Ir.Imm (Ir.Cint 1)) | (Ir.Mul, Ir.Imm (Ir.Cint 1), x) -> Some x
  | (Ir.Mul, _, Ir.Imm (Ir.Cint 0)) | (Ir.Mul, Ir.Imm (Ir.Cint 0), _) ->
    Some zero
  | (Ir.Div, x, Ir.Imm (Ir.Cint 1)) -> Some x
  | ((Ir.Shl | Ir.Shr), x, Ir.Imm (Ir.Cint 0)) -> Some x
  | (Ir.And, _, Ir.Imm (Ir.Cint 0)) | (Ir.And, Ir.Imm (Ir.Cint 0), _) ->
    Some zero
  | (Ir.Or, x, Ir.Imm (Ir.Cint 0)) | (Ir.Or, Ir.Imm (Ir.Cint 0), x) -> Some x
  | (Ir.Xor, x, Ir.Imm (Ir.Cint 0)) | (Ir.Xor, Ir.Imm (Ir.Cint 0), x) -> Some x
  | _ -> None

let fold_unop op (c : Ir.const) : Ir.const option =
  let c = match c with
    | Ir.Cint x -> Ir.Cint (Lp_util.Int32_sem.wrap32 x)
    | Ir.Cfloat _ -> c
  in
  match (op, c) with
  | (Ir.Neg, Ir.Cint x) -> Some (Ir.Cint (Lp_util.Int32_sem.wrap32 (-x)))
  | (Ir.Not, Ir.Cint x) -> Some (Ir.Cint (if x = 0 then 1 else 0))
  | (Ir.Bnot, Ir.Cint x) -> Some (Ir.Cint (Lp_util.Int32_sem.wrap32 (lnot x)))
  | (Ir.Fneg, Ir.Cfloat x) -> Some (Ir.Cfloat (-.x))
  | (Ir.I2f, Ir.Cint x) -> Some (Ir.Cfloat (float_of_int x))
  | (Ir.F2i, Ir.Cfloat x) -> Some (Ir.Cint (Lp_util.Int32_sem.wrap32 (int_of_float x)))
  | _ -> None

(** One block: propagate register constants forward, substitute, fold. *)
let fold_block (b : Ir.block) : int =
  let changes = ref 0 in
  let consts : (Ir.reg, Ir.const) Hashtbl.t = Hashtbl.create 16 in
  let subst op =
    match op with
    | Ir.Reg r -> (
      match Hashtbl.find_opt consts r with
      | Some c ->
        incr changes;
        Ir.Imm c
      | None -> op)
    | Ir.Imm _ -> op
  in
  let kill_def i =
    match Ir.def i with Some d -> Hashtbl.remove consts d | None -> ()
  in
  List.iter
    (fun (i : Ir.instr) ->
      (* substitute known constants into operands *)
      (match i.Ir.idesc with
      | Ir.Move (d, a) -> i.Ir.idesc <- Ir.Move (d, subst a)
      | Ir.Binop (op, d, a, b2) -> i.Ir.idesc <- Ir.Binop (op, d, subst a, subst b2)
      | Ir.Unop (op, d, a) -> i.Ir.idesc <- Ir.Unop (op, d, subst a)
      | Ir.Mac (d, a, b2, c) -> i.Ir.idesc <- Ir.Mac (d, subst a, subst b2, subst c)
      | Ir.Load (d, s, idx) -> i.Ir.idesc <- Ir.Load (d, s, subst idx)
      | Ir.Store (s, idx, v) -> i.Ir.idesc <- Ir.Store (s, subst idx, subst v)
      | Ir.Call (d, f, args) -> i.Ir.idesc <- Ir.Call (d, f, List.map subst args)
      | Ir.Send (ch, v) -> i.Ir.idesc <- Ir.Send (ch, subst v)
      | Ir.Faa (d, s, v) -> i.Ir.idesc <- Ir.Faa (d, s, subst v)
      | Ir.Const _ | Ir.Recv _ | Ir.Pg_off _ | Ir.Pg_on _ | Ir.Dvfs _
      | Ir.Barrier _ -> ());
      (* fold *)
      (match i.Ir.idesc with
      | Ir.Binop (op, d, Ir.Imm a, Ir.Imm b2) -> (
        match fold_binop op a b2 with
        | Some c ->
          incr changes;
          i.Ir.idesc <- Ir.Move (d, Ir.Imm c)
        | None -> ())
      | Ir.Binop (op, d, a, b2) -> (
        match simplify_binop op a b2 with
        | Some res ->
          incr changes;
          i.Ir.idesc <- Ir.Move (d, res)
        | None -> ())
      | Ir.Unop (op, d, Ir.Imm a) -> (
        match fold_unop op a with
        | Some c ->
          incr changes;
          i.Ir.idesc <- Ir.Move (d, Ir.Imm c)
        | None -> ())
      | _ -> ());
      (* update the constant environment *)
      kill_def i;
      match i.Ir.idesc with
      | Ir.Const (d, c) | Ir.Move (d, Ir.Imm c) -> Hashtbl.replace consts d c
      | _ -> ())
    b.Ir.instrs;
  (* substitute into the terminator, fold a constant branch *)
  (match b.Ir.term with
  | Ir.Ret (Some (Ir.Reg r)) -> (
    match Hashtbl.find_opt consts r with
    | Some c ->
      incr changes;
      b.Ir.term <- Ir.Ret (Some (Ir.Imm c))
    | None -> ())
  | _ -> ());
  (match b.Ir.term with
  | Ir.Br (Ir.Imm (Ir.Cint n), l1, l2) ->
    incr changes;
    b.Ir.term <- Ir.Jmp (if n <> 0 then l1 else l2)
  | Ir.Br (Ir.Reg r, l1, l2) -> (
    match Hashtbl.find_opt consts r with
    | Some (Ir.Cint n) ->
      incr changes;
      b.Ir.term <- Ir.Jmp (if n <> 0 then l1 else l2)
    | Some (Ir.Cfloat _) | None -> ())
  | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> ());
  !changes

let pass : Pass.func_pass =
  {
    Pass.name = "constfold";
    (* folding a constant branch rewrites terminators, so nothing
       CFG-derived survives *)
    preserves = [];
    run =
      (fun _am _prog f ->
        let n =
          List.fold_left (fun acc b -> acc + fold_block b) 0
            (Prog.blocks_in_order f)
        in
        if n > 0 then Prog.touch f;
        n);
  }
