(** Compiler-directed DVFS insertion.

    Memory-bound loops spend most of their time on the (fixed-frequency)
    bus and shared memory, so scaling the core down stretches only the
    compute fraction.  For each top-level loop the pass estimates the
    memory-bound fraction [mu] and picks the lowest operating point whose
    slowdown [(1 - mu) * fnom/f + mu] stays within the allowed bound, then
    brackets the loop with [dvfs] instructions (down in the preheader,
    back to nominal on the exit landings).

    Loops that perform channel operations (directly or through calls) are
    skipped: their timing couples with other cores and is instead handled
    by the pattern-aware balancing pass. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point
module Machine = Lp_machine.Machine
module Loops = Lp_analysis.Loops
module Est = Lp_analysis.Est
module Report = Lp_obs.Report

type options = {
  max_slowdown : float;   (** e.g. 0.05 = at most 5% slower *)
  min_mem_fraction : float;
  min_cycles : float;     (** amortisation threshold for the transition *)
}

let default_options =
  { max_slowdown = 0.10; min_mem_fraction = 0.20; min_cycles = 2000.0 }

(* communication closure: does a function (transitively) use channel or
   barrier intrinsics? *)
let comm_closure (prog : Prog.t) : (string, bool) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace tbl f.Prog.fname false) (Prog.funcs prog);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let has =
          Prog.fold_instrs f
            (fun acc _ i ->
              acc
              ||
              match i.Ir.idesc with
              | Ir.Send _ | Ir.Recv _ | Ir.Barrier _ | Ir.Faa _ -> true
              | Ir.Call (_, callee, _) ->
                Option.value ~default:true (Hashtbl.find_opt tbl callee)
              | _ -> false)
            false
        in
        if Hashtbl.find tbl f.Prog.fname <> has then begin
          Hashtbl.replace tbl f.Prog.fname has;
          changed := true
        end)
      (Prog.funcs prog)
  done;
  tbl

let loop_has_comm (comm : (string, bool) Hashtbl.t) (f : Prog.func)
    (l : Loops.loop) : bool =
  Loops.LS.exists
    (fun bid ->
      let b = Prog.block f bid in
      List.exists
        (fun (i : Ir.instr) ->
          match i.Ir.idesc with
          | Ir.Send _ | Ir.Recv _ | Ir.Barrier _ | Ir.Faa _ -> true
          | Ir.Call (_, callee, _) ->
            Option.value ~default:true (Hashtbl.find_opt comm callee)
          | _ -> false)
        b.Ir.instrs)
    l.Loops.blocks

(** Slowdown of a loop with memory fraction [mu] at point [p]: only the
    compute fraction stretches with the frequency ratio. *)
let slowdown_at (pm : Power_model.t) ~mu (p : Operating_point.t) =
  let nominal = Power_model.nominal pm in
  ((1.0 -. mu)
  *. (nominal.Operating_point.freq_mhz /. p.Operating_point.freq_mhz))
  +. mu

(** Lowest operating level whose slowdown on a loop with memory fraction
    [mu] stays within [max_slowdown] ([None] if only nominal qualifies),
    plus every rejected non-nominal point with the reason — the audit
    report records why each operating point lost. *)
let choose_level_explained (pm : Power_model.t) ~mu ~max_slowdown :
    int option * (string * string) list =
  let nominal = Power_model.nominal pm in
  let chosen = ref None in
  let rejected = ref [] in
  List.iter
    (fun (p : Operating_point.t) ->
      if p.Operating_point.level <> nominal.Operating_point.level then
        let s = slowdown_at pm ~mu p in
        if s > 1.0 +. max_slowdown then
          rejected :=
            ( Printf.sprintf "L%d@%.0fMHz" p.Operating_point.level
                p.Operating_point.freq_mhz,
              Printf.sprintf "slowdown %.3f > %.3f" s (1.0 +. max_slowdown) )
            :: !rejected
        else if !chosen = None then
          (* points are ascending: the first point within bound wins *)
          chosen := Some p.Operating_point.level
        else
          rejected :=
            ( Printf.sprintf "L%d@%.0fMHz" p.Operating_point.level
                p.Operating_point.freq_mhz,
              "higher point than the chosen level" )
            :: !rejected)
    (Power_model.points pm);
  (!chosen, List.rev !rejected)

let choose_level (pm : Power_model.t) ~mu ~max_slowdown : int option =
  fst (choose_level_explained pm ~mu ~max_slowdown)

(** Pick the ladder for a function from the classes of the cores that
    can execute it.  [None] means the classes disagree (incompatible
    ladders): a raw [dvfs level] would mean different V/f pairs on
    different cores, so the pass must skip the region. *)
let ladder_of_classes (m : Machine.t) (classes : int list) :
    (string * Power_model.t) option =
  let cc k = m.Machine.classes.(k) in
  match classes with
  | [] ->
    (* unreachable function: class 0's ladder, today's behaviour *)
    Some (m.Machine.classes.(0).Machine.cc_name, Machine.ref_power m)
  | k :: rest ->
    let pm0 = (cc k).Machine.cc_power in
    if List.for_all
         (fun k' -> Power_model.same_ladder pm0 (cc k').Machine.cc_power)
         rest
    then
      Some
        (String.concat "+" (List.map (fun k' -> (cc k').Machine.cc_name) classes),
         pm0)
    else None

let run_func ?(opts = default_options) ?(report = Report.disabled)
    ?(find_loops = Loops.find) ?loop_est ?cfg_of ?(classes = [])
    (m : Machine.t) (prog : Prog.t) (comm : (string, bool) Hashtbl.t)
    (f : Prog.func) : int =
  let loop_est =
    match loop_est with Some le -> le | None -> Est.loop_estimate m prog
  in
  let ladder = ladder_of_classes m classes in
  let (cls_name, pm) =
    match ladder with
    | Some (name, pm) -> (name, pm)
    | None ->
      (* only used for the audit record of the skip *)
      (String.concat "+"
         (List.map
            (fun k -> m.Machine.classes.(k).Machine.cc_name)
            classes),
       Machine.ref_power m)
  in
  let changes = ref 0 in
  let loops = Loops.top_level (find_loops f) in
  let emit ~l ~mu ~est_cycles ~chosen ~rejected ~reason =
    if Report.enabled report then
      Report.add report
        (Report.Dvfs_decision
           {
             dv_func = f.Prog.fname;
             dv_site = Printf.sprintf "loop@b%d" l.Loops.header;
             dv_core_class = cls_name;
             dv_ladder =
               (match ladder with
               | Some (_, pm) -> Power_model.describe_ladder pm
               | None -> "(incompatible)");
             dv_mu = mu;
             dv_est_cycles = est_cycles;
             dv_chosen = chosen;
             dv_rejected = rejected;
             dv_reason = reason;
           })
  in
  List.iter
    (fun l ->
      if Option.is_none ladder then
        emit ~l ~mu:0.0 ~est_cycles:0.0 ~chosen:None ~rejected:[]
          ~reason:
            (Some
               "function runs on core classes with incompatible DVFS \
                ladders")
      else if loop_has_comm comm f l then
        emit ~l ~mu:0.0 ~est_cycles:0.0 ~chosen:None ~rejected:[]
          ~reason:
            (Some "communicating loop: timing coupled with other cores")
      else begin
        let est = loop_est f l in
        let mu = est.Est.mem_fraction in
        let est_cycles = est.Est.total_cycles in
        if est_cycles < opts.min_cycles then
          emit ~l ~mu ~est_cycles ~chosen:None ~rejected:[]
            ~reason:
              (Some
                 (Printf.sprintf
                    "est %.0f cycles below the %.0f-cycle amortisation \
                     threshold"
                    est_cycles opts.min_cycles))
        else if mu < opts.min_mem_fraction then
          emit ~l ~mu ~est_cycles ~chosen:None ~rejected:[]
            ~reason:
              (Some
                 (Printf.sprintf "mu %.2f below minimum %.2f" mu
                    opts.min_mem_fraction))
        else begin
          let chosen, rejected =
            choose_level_explained pm ~mu ~max_slowdown:opts.max_slowdown
          in
          match chosen with
          | None ->
            emit ~l ~mu ~est_cycles ~chosen:None ~rejected
              ~reason:(Some "no operating point within the slowdown bound")
          | Some level -> (
            match Region.preheader ?cfg_of f l with
            | None ->
              emit ~l ~mu ~est_cycles ~chosen:None ~rejected
                ~reason:(Some "no preheader to host the transition")
            | Some pre ->
              let loc = Region.loop_loc f l in
              Region.append ~loc f pre (Ir.Dvfs level);
              List.iter
                (fun landing ->
                  Region.prepend ~loc f landing
                    (Ir.Dvfs (Power_model.max_level pm)))
                (Region.exit_landings f l);
              incr changes;
              emit ~l ~mu ~est_cycles ~chosen:(Some level) ~rejected
                ~reason:None)
        end
      end)
    loops;
  !changes

let insert ?(opts = default_options) ?(report = Report.disabled) ?am
    (m : Machine.t) (prog : Prog.t) : int =
  let module Manager = Lp_analysis.Manager in
  let comm = comm_closure prog in
  let find_loops = Option.map Manager.loops am in
  let loop_est = Option.map (fun am -> Manager.loop_est am m) am in
  let cfg_of = Option.map Manager.cfg am in
  let fclasses = Gating.func_classes prog m in
  List.fold_left
    (fun acc f ->
      let classes =
        Option.value ~default:[] (Hashtbl.find_opt fclasses f.Prog.fname)
      in
      acc
      + run_func ~opts ~report ?find_loops ?loop_est ?cfg_of ~classes m prog
          comm f)
    0 (Prog.funcs prog)
