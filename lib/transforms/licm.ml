(** Loop-invariant code motion.

    Hoists pure, non-trapping instructions whose operands are defined
    outside the loop into the loop preheader.  Divisions and loads are
    never hoisted (they can trap on a zero divisor or an out-of-bounds
    index when the loop body would not have executed), so hoisting is
    always safe to do speculatively.

    Because the IR is not SSA, a candidate's destination register must be
    defined exactly once in the whole function — then moving the single
    definition cannot interfere with any other definition of the same
    register. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Loops = Lp_analysis.Loops
module Manager = Lp_analysis.Manager

let hoistable (i : Ir.instr) : bool =
  match i.Ir.idesc with
  | Ir.Const _ | Ir.Move _ | Ir.Mac _ -> true
  | Ir.Binop (op, _, _, _) -> (
    match op with Ir.Div | Ir.Mod | Ir.Fdiv -> false | _ -> true)
  | Ir.Unop _ -> true
  | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Pg_off _ | Ir.Pg_on _ | Ir.Dvfs _
  | Ir.Send _ | Ir.Recv _ | Ir.Barrier _ | Ir.Faa _ -> false

(** Registers with more than one definition in the function (or defined
    and also a parameter). *)
let multi_def_regs (f : Prog.func) : (Ir.reg, unit) Hashtbl.t =
  let seen = Hashtbl.create 64 in
  let multi = Hashtbl.create 16 in
  List.iter (fun (r, _) -> Hashtbl.replace seen r ()) f.Prog.params;
  Prog.iter_instrs f (fun _ i ->
      match Ir.def i with
      | Some d ->
        if Hashtbl.mem seen d then Hashtbl.replace multi d ()
        else Hashtbl.replace seen d ()
      | None -> ());
  multi

let run_func ?(find_loops = Loops.find) ?cfg_of (f : Prog.func) : int =
  let hoisted = ref 0 in
  let loops = find_loops f in
  let multi = multi_def_regs f in
  (* innermost loops first: hoisting out of an inner loop may enable the
     next fixpoint round to hoist further out of the outer loop *)
  let loops =
    List.sort (fun a b -> compare b.Loops.depth a.Loops.depth) loops
  in
  List.iter
    (fun l ->
      (* registers defined anywhere inside the loop *)
      let defined_inside = Hashtbl.create 32 in
      Loops.LS.iter
        (fun bid ->
          List.iter
            (fun i ->
              match Ir.def i with
              | Some d -> Hashtbl.replace defined_inside d ()
              | None -> ())
            (Prog.block f bid).Ir.instrs)
        l.Loops.blocks;
      (* collect candidates in one sweep; hoisting removes them from their
         block and appends to the preheader in original order *)
      let candidates = ref [] in
      Loops.LS.iter
        (fun bid ->
          let b = Prog.block f bid in
          List.iter
            (fun (i : Ir.instr) ->
              match Ir.def i with
              | Some d
                when hoistable i
                     && (not (Hashtbl.mem multi d))
                     && List.for_all
                          (fun u -> not (Hashtbl.mem defined_inside u))
                          (Ir.uses i) ->
                candidates := (b, i) :: !candidates
              | _ -> ())
            b.Ir.instrs)
        l.Loops.blocks;
      match !candidates with
      | [] -> ()
      | cands -> (
        match Region.preheader ?cfg_of f l with
        | None -> ()
        | Some pre ->
          List.iter
            (fun (b, i) ->
              b.Ir.instrs <- List.filter (fun j -> j != i) b.Ir.instrs;
              pre.Ir.instrs <- pre.Ir.instrs @ [ i ];
              (* its destination now counts as defined outside; but a
                 conservative single pass per fixpoint round is enough *)
              incr hoisted)
            (List.rev cands);
          Prog.touch f))
    loops;
  !hoisted

let pass : Pass.func_pass =
  {
    Pass.name = "licm";
    preserves = [];
    run =
      (fun am _ f ->
        run_func ~find_loops:(Manager.loops am) ~cfg_of:(Manager.cfg am) f);
  }
