(** Full unrolling of tiny constant-trip loops.

    Loops of the exact shape the lowering emits (one condition block, one
    body block) with a known constant trip count of at most
    [max_trip] and a body of at most [max_body] instructions are
    replaced by the body replicated trip-count times.  Because the IR is
    not SSA, replication is just sequential re-execution of the same
    registers, so copies only need fresh instruction ids.

    The payoff is compound: after unrolling, the induction variable is a
    chain of constants, so global constant propagation and folding
    typically dissolve the whole loop (e.g. small fixed-tap filter
    kernels become straight-line MAC sequences). *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Loops = Lp_analysis.Loops

type options = { max_trip : int; max_body : int }

let default_options = { max_trip = 4; max_body = 16 }

(** Recognise the two-block shape: header H with [Br (c, body, exit)] and
    body B ending in [Jmp H]; the loop's blocks are exactly {H, B}. *)
let two_block_shape (f : Prog.func) (l : Loops.loop) :
    (Ir.block * Ir.block * Ir.label) option =
  if Loops.LS.cardinal l.Loops.blocks <> 2 then None
  else begin
    let header = Prog.block f l.Loops.header in
    match header.Ir.term with
    | Ir.Br (_, body_id, exit_id)
      when Loops.contains l body_id
           && (not (Loops.contains l exit_id))
           && body_id <> l.Loops.header -> (
      let body = Prog.block f body_id in
      match body.Ir.term with
      | Ir.Jmp back when back = l.Loops.header -> Some (header, body, exit_id)
      | _ -> None)
    | _ -> None
  end

let copy_instrs (f : Prog.func) (instrs : Ir.instr list) : Ir.instr list =
  (* cloned iterations keep the original instruction's provenance *)
  List.map
    (fun (i : Ir.instr) -> Prog.new_instr ~loc:i.Ir.loc f i.Ir.idesc)
    instrs

let run_func ?(opts = default_options) ?(find_loops = Loops.find)
    (f : Prog.func) : int =
  let changes = ref 0 in
  let loops = find_loops f in
  (* only innermost loops (no other loop strictly inside) *)
  let innermost l =
    not
      (List.exists
         (fun l' ->
           l'.Loops.header <> l.Loops.header
           && Loops.LS.subset l'.Loops.blocks l.Loops.blocks)
         loops)
  in
  List.iter
    (fun l ->
      if innermost l then
        match (Loops.constant_trip f l, two_block_shape f l) with
        | (Some trip, Some (header, body, exit_id))
          when trip >= 0 && trip <= opts.max_trip
               && List.length body.Ir.instrs <= opts.max_body ->
          (* the unrolled sequence must still evaluate the header's
             condition computation (it may define registers used later),
             then execute the body [trip] times; the final header
             evaluation is kept so post-loop uses of its defs stay
             valid. *)
          let pieces = ref [] in
          for _ = 1 to trip do
            pieces := !pieces @ copy_instrs f header.Ir.instrs
                      @ copy_instrs f body.Ir.instrs
          done;
          pieces := !pieces @ copy_instrs f header.Ir.instrs;
          header.Ir.instrs <- !pieces;
          header.Ir.term <- Ir.Jmp exit_id;
          Prog.touch f;
          (* the body block becomes unreachable; simplify-cfg prunes it *)
          incr changes
        | _ -> ())
    loops;
  !changes

let pass : Pass.func_pass =
  {
    Pass.name = "unroll";
    preserves = [];
    run =
      (fun am _ f ->
        run_func ~opts:default_options
          ~find_loops:(Lp_analysis.Manager.loops am) f);
  }
