(** Global (cross-block) constant propagation.

    The local folder only sees constants within one basic block; this
    pass runs a forward dataflow over the whole CFG with the classic
    per-register constant lattice (unknown ⊑ constant ⊑ varying) and
    replaces uses whose every reaching definition agrees on one constant.
    A practical payoff beyond folding: loop bounds held in registers
    become immediates, which lets the trip-count estimator (and therefore
    the gating/DVFS/unrolling decisions) see through them. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Cfg = Lp_analysis.Cfg
module Manager = Lp_analysis.Manager

(* lattice per register *)
type cell =
  | Unknown          (** no definition seen yet (bottom) *)
  | Const of Ir.const
  | Varying          (** conflicting or non-constant definitions (top) *)

let join_cell a b =
  match (a, b) with
  | (Unknown, x) | (x, Unknown) -> x
  | (Const c1, Const c2) when c1 = c2 -> a
  | (Const _, Const _) | (Varying, _) | (_, Varying) -> Varying

type state = cell array

let join_state (a : state) (b : state) : state =
  Array.init (Array.length a) (fun i -> join_cell a.(i) b.(i))

let equal_state (a : state) (b : state) = a = b

(** Transfer one instruction over the state. *)
let transfer_instr (st : state) (i : Ir.instr) : unit =
  let lookup = function
    | Ir.Imm c -> Const c
    | Ir.Reg r -> st.(r)
  in
  match Ir.def i with
  | None -> ()
  | Some d ->
    st.(d) <-
      (match i.Ir.idesc with
      | Ir.Const (_, c) -> Const c
      | Ir.Move (_, a) -> lookup a
      | Ir.Binop (op, _, a, b) -> (
        match (lookup a, lookup b) with
        | (Const ca, Const cb) -> (
          match Constfold.fold_binop op ca cb with
          | Some c -> Const c
          | None -> Varying)
        | _ -> Varying)
      | Ir.Unop (op, _, a) -> (
        match lookup a with
        | Const ca -> (
          match Constfold.fold_unop op ca with
          | Some c -> Const c
          | None -> Varying)
        | _ -> Varying)
      | Ir.Mac _ | Ir.Load _ | Ir.Call _ | Ir.Recv _ | Ir.Faa _
      | Ir.Store _ | Ir.Pg_off _ | Ir.Pg_on _ | Ir.Dvfs _ | Ir.Send _
      | Ir.Barrier _ -> Varying)

let transfer_block (f : Prog.func) (st : state) (bid : Ir.label) : state =
  let st = Array.copy st in
  List.iter (transfer_instr st) (Prog.block f bid).Ir.instrs;
  st

(** Compute block-entry states by iteration to fixpoint. *)
let analyse ?(cfg_of = Cfg.build) (f : Prog.func) : (Ir.label, state) Hashtbl.t =
  let nregs = max 1 (Lp_util.Id_gen.peek f.Prog.reg_gen) in
  let cfg = cfg_of f in
  let entry_states : (Ir.label, state) Hashtbl.t = Hashtbl.create 16 in
  let bottom () = Array.make nregs Unknown in
  (* parameters vary (set by the caller) *)
  let initial = bottom () in
  List.iter (fun (r, _) -> initial.(r) <- Varying) f.Prog.params;
  Hashtbl.replace entry_states f.Prog.entry initial;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        let in_state =
          match Cfg.preds cfg bid with
          | [] ->
            Option.value ~default:(bottom ()) (Hashtbl.find_opt entry_states bid)
          | preds ->
            let base =
              if bid = f.Prog.entry then initial else bottom ()
            in
            List.fold_left
              (fun acc p ->
                match Hashtbl.find_opt entry_states p with
                | Some st -> join_state acc (transfer_block f st p)
                | None -> acc)
              base preds
        in
        match Hashtbl.find_opt entry_states bid with
        | Some old when equal_state old in_state -> ()
        | _ ->
          Hashtbl.replace entry_states bid in_state;
          changed := true)
      cfg.Cfg.rpo
  done;
  entry_states

(** Substitute proven constants into operands; returns rewrites done. *)
let run_func ?cfg_of (f : Prog.func) : int =
  let entry_states = analyse ?cfg_of f in
  let changes = ref 0 in
  Prog.iter_blocks f (fun b ->
      match Hashtbl.find_opt entry_states b.Ir.bid with
      | None -> ()
      | Some entry ->
        let st = Array.copy entry in
        let subst op =
          match op with
          | Ir.Reg r -> (
            match st.(r) with
            | Const c ->
              incr changes;
              Ir.Imm c
            | Unknown | Varying -> op)
          | Ir.Imm _ -> op
        in
        List.iter
          (fun (i : Ir.instr) ->
            (match i.Ir.idesc with
            | Ir.Move (d, a) -> i.Ir.idesc <- Ir.Move (d, subst a)
            | Ir.Binop (op, d, a, b2) ->
              i.Ir.idesc <- Ir.Binop (op, d, subst a, subst b2)
            | Ir.Unop (op, d, a) -> i.Ir.idesc <- Ir.Unop (op, d, subst a)
            | Ir.Mac (d, a, b2, c) ->
              i.Ir.idesc <- Ir.Mac (d, subst a, subst b2, subst c)
            | Ir.Load (d, s, idx) -> i.Ir.idesc <- Ir.Load (d, s, subst idx)
            | Ir.Store (s, idx, v) ->
              i.Ir.idesc <- Ir.Store (s, subst idx, subst v)
            | Ir.Call (d, callee, args) ->
              i.Ir.idesc <- Ir.Call (d, callee, List.map subst args)
            | Ir.Send (ch, v) -> i.Ir.idesc <- Ir.Send (ch, subst v)
            | Ir.Faa (d, s, v) -> i.Ir.idesc <- Ir.Faa (d, s, subst v)
            | Ir.Const _ | Ir.Recv _ | Ir.Pg_off _ | Ir.Pg_on _ | Ir.Dvfs _
            | Ir.Barrier _ -> ());
            transfer_instr st i)
          b.Ir.instrs;
        (* terminators too *)
        (match b.Ir.term with
        | Ir.Br (op, l1, l2) -> b.Ir.term <- Ir.Br (subst op, l1, l2)
        | Ir.Ret (Some op) -> b.Ir.term <- Ir.Ret (Some (subst op))
        | Ir.Ret None | Ir.Jmp _ -> ()));
  if !changes > 0 then Prog.touch f;
  !changes

let pass : Pass.func_pass =
  {
    Pass.name = "constprop";
    (* substitutes operands only, never branch targets: the CFG and
       everything derived from its shape survive; liveness does not
       (register uses disappear) *)
    preserves = [ Manager.Cfg; Manager.Dominators; Manager.Loops ];
    run = (fun am _ f -> run_func ~cfg_of:(Manager.cfg am) f);
  }
