(** Dead-code elimination, driven by register liveness.

    Removes side-effect-free instructions whose result is dead.  Loads
    count as side-effect-free (removing a dead load never changes program
    state, only timing), calls are conservatively kept. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Cfg = Lp_analysis.Cfg
module Liveness = Lp_analysis.Liveness
module Manager = Lp_analysis.Manager
module IS = Lp_analysis.Dataflow.Int_set

let pure (i : Ir.instr) : bool =
  match i.Ir.idesc with
  | Ir.Const _ | Ir.Move _ | Ir.Binop _ | Ir.Unop _ | Ir.Mac _ | Ir.Load _ ->
    true
  | Ir.Store _ | Ir.Call _ | Ir.Pg_off _ | Ir.Pg_on _ | Ir.Dvfs _ | Ir.Send _
  | Ir.Recv _ | Ir.Barrier _ | Ir.Faa _ -> false

let run_func (am : Manager.t) (f : Prog.func) : int =
  (* Unreachable blocks are dead code too, and must go first: liveness
     never marks their uses live, so removing a def whose only remaining
     use sits in an unreachable block would leave the IR rejecting the
     verifier's every-use-has-a-def invariant until the next
     simplify-cfg. *)
  let pruned = Cfg.prune_unreachable_of (Manager.cfg am f) in
  let live = Manager.liveness am f in
  let removed = ref pruned in
  Prog.iter_blocks f (fun b ->
      let live_set =
        ref
          (List.fold_left
             (fun acc r -> IS.add r acc)
             (Liveness.live_out live b.Ir.bid)
             (Ir.term_uses b.Ir.term))
      in
      let keep =
        List.rev_map
          (fun (i : Ir.instr) ->
            let dead =
              pure i
              &&
              match Ir.def i with
              | Some d -> not (IS.mem d !live_set)
              | None -> true (* a pure instruction with no def is a no-op *)
            in
            if dead then begin
              incr removed;
              None
            end
            else begin
              (match Ir.def i with
              | Some d -> live_set := IS.remove d !live_set
              | None -> ());
              List.iter (fun u -> live_set := IS.add u !live_set) (Ir.uses i);
              Some i
            end)
          (List.rev b.Ir.instrs)
        |> List.filter_map Fun.id
      in
      b.Ir.instrs <- keep);
  if !removed > pruned then Prog.touch f;
  !removed

let pass : Pass.func_pass =
  { Pass.name = "dce"; preserves = []; run = (fun am _ f -> run_func am f) }
