(** Constant promotion: globals that no instruction in the whole program
    ever writes (no [Store], no [Faa]) are placed in on-chip ROM/SPM.
    Loads from them then bypass the shared bus — the standard treatment of
    coefficient tables on embedded DSPs, and a prerequisite for kernels to
    scale past the bus. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module SS = Set.Make (String)

let written_globals (prog : Prog.t) : SS.t =
  List.fold_left
    (fun acc f ->
      Prog.fold_instrs f
        (fun acc _ i ->
          match i.Ir.idesc with
          | Ir.Store (s, _, _) | Ir.Faa (_, s, _) -> (
            match s.Ir.sym_space with
            | Ir.Shared | Ir.Rom -> SS.add s.Ir.sym_name acc
            | Ir.Frame -> acc)
          | _ -> acc)
        acc)
    SS.empty (Prog.funcs prog)

(** Promote loads of never-written globals in one function, given the
    program's written set. *)
let promote_func written (f : Prog.func) : int =
  let promoted = ref 0 in
  Prog.iter_instrs f (fun _ i ->
      match i.Ir.idesc with
      | Ir.Load (d, s, idx)
        when s.Ir.sym_space = Ir.Shared && not (SS.mem s.Ir.sym_name written)
        ->
        incr promoted;
        i.Ir.idesc <- Ir.Load (d, { s with Ir.sym_space = Ir.Rom }, idx)
      | _ -> ());
  if !promoted > 0 then Prog.touch f;
  !promoted

(** Rewrite loads of never-written globals to [Rom] space; returns the
    number of load sites rewritten. *)
let run (prog : Prog.t) : int =
  let written = written_globals prog in
  List.fold_left (fun acc f -> acc + promote_func written f) 0
    (Prog.funcs prog)

let pass : Pass.func_pass =
  {
    Pass.name = "const-promote";
    (* rewrites only the address space of a load: same defs, same uses,
       same shape — every registered analysis survives (Est does not,
       but that is program-stamped and expires on the touch) *)
    preserves =
      Lp_analysis.Manager.[ Cfg; Dominators; Loops; Liveness ];
    (* program-scoped analysis; running it per function would be wrong,
       so the pass recomputes the written set but only rewrites [f] *)
    run = (fun _ prog f -> promote_func (written_globals prog) f);
  }
