(** Compiler-directed power gating with Sink-N-Hoist merging.

    Insertion works at two granularities:

    - {b loop gating}: for each natural loop whose estimated duration
      exceeds the break-even threshold of a component the loop provably
      never uses (component-activity analysis, call-closed), bracket the
      loop with [pg_off] in the preheader and [pg_on] on the exit
      landings.  Only components the containing function uses elsewhere
      are re-enabled — others are left to entry gating.
    - {b entry gating}: at each core's entry function, components never
      used by the whole closure of that entry are switched off once for
      the entire run.

    The {b Sink-N-Hoist} merge then (after CFG simplification has fused
    exit landings with following preheaders) rewrites gating sequences
    locally: adjacent same-polarity gating instructions are merged into
    one multi-component instruction, [pg_on; ...; pg_off] pairs with no
    intervening use are cancelled (the component simply stays off across
    both regions), and [pg_off; ...; pg_on] pairs whose separation is
    below break-even are dropped (the region is too short to pay for the
    transitions). *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Component = Lp_power.Component
module CS = Component.Set
module Power_model = Lp_power.Power_model
module Machine = Lp_machine.Machine
module Loops = Lp_analysis.Loops
module Compuse = Lp_analysis.Compuse
module Est = Lp_analysis.Est
module Manager = Lp_analysis.Manager
module Report = Lp_obs.Report

let comp_names cs = List.map Component.to_string (CS.elements cs)

type options = {
  break_even_scale : float;
      (** multiply the model's break-even threshold; the F4 sensitivity
          experiment sweeps this *)
  loop_gating : bool;
  entry_gating : bool;
}

let default_options =
  { break_even_scale = 1.0; loop_gating = true; entry_gating = true }

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

(** Break-even threshold of [comp] under one class's power model. *)
let break_even_cycles_pm (pm : Power_model.t) comp =
  Power_model.break_even_cycles pm ~comp ~point:(Power_model.nominal pm)

(** Worst-case (largest) break-even across the machine's core classes:
    gating is only inserted when it pays off on whichever class runs the
    code.  On homogeneous machines this is the single class's value. *)
let break_even_cycles (m : Machine.t) comp =
  Array.fold_left
    (fun acc (cc : Machine.core_class) ->
      max acc (break_even_cycles_pm cc.Machine.cc_power comp))
    0 m.Machine.classes

(** Class indices whose cores can execute each function: entry [i] runs
    on core [i] (the simulator's layout), callees inherit every caller's
    classes over the call graph. *)
let func_classes (prog : Prog.t) (m : Machine.t) : (string, int list) Hashtbl.t =
  let table = Hashtbl.create 16 in
  List.iteri
    (fun i entry ->
      let cls = Machine.class_index_of_core m i in
      let visited = Hashtbl.create 16 in
      let rec visit name =
        if not (Hashtbl.mem visited name) then begin
          Hashtbl.replace visited name ();
          let cur = Option.value ~default:[] (Hashtbl.find_opt table name) in
          if not (List.mem cls cur) then
            Hashtbl.replace table name (cur @ [ cls ]);
          match Prog.find_func prog name with
          | None -> ()
          | Some f ->
            Prog.iter_instrs f (fun _ i ->
                match i.Ir.idesc with
                | Ir.Call (_, callee, _) -> visit callee
                | _ -> ())
        end
      in
      visit entry)
    (Prog.entries prog);
  table

(** Largest break-even among [classes] (falling back to the machine-wide
    worst case when the executing classes are unknown). *)
let break_even_for (m : Machine.t) (classes : int list) comp =
  match classes with
  | [] -> break_even_cycles m comp
  | l ->
    List.fold_left
      (fun acc k ->
        max acc
          (break_even_cycles_pm m.Machine.classes.(k).Machine.cc_power comp))
      0 l

(** Functions reachable from each entry, over the call graph; a loop in
    [f] may re-enable a component if any core whose entry reaches [f]
    uses it somewhere — gating is a per-core decision, not a
    per-function one. *)
let core_use_table (prog : Prog.t) (cu : Compuse.t) :
    (string, CS.t) Hashtbl.t =
  let table = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace table f.Prog.fname CS.empty)
    (Prog.funcs prog);
  List.iter
    (fun entry ->
      let entry_use = Compuse.func_use cu entry in
      let visited = Hashtbl.create 16 in
      let rec visit name =
        if not (Hashtbl.mem visited name) then begin
          Hashtbl.replace visited name ();
          Hashtbl.replace table name
            (CS.union entry_use
               (Option.value ~default:CS.empty (Hashtbl.find_opt table name)));
          match Prog.find_func prog name with
          | None -> ()
          | Some f ->
            Prog.iter_instrs f (fun _ i ->
                match i.Ir.idesc with
                | Ir.Call (_, callee, _) -> visit callee
                | _ -> ())
        end
      in
      visit entry)
    (Prog.entries prog);
  table

(** Gate idle components around loops of [f].  Returns insertions done.
    [find_loops] / [loop_est] / [cfg_of] default to fresh computation;
    the driver routes them through its analysis manager. *)
let loop_gating ?(opts = default_options) ?(report = Report.disabled)
    ?(find_loops = Loops.find) ?loop_est ?cfg_of ?(classes = [])
    (m : Machine.t) (prog : Prog.t) (cu : Compuse.t) ~(core_use : CS.t)
    (f : Prog.func) : int =
  let loop_est =
    match loop_est with Some le -> le | None -> Est.loop_estimate m prog
  in
  let changes = ref 0 in
  let loops = find_loops f in
  (* outermost first; remember which comps an enclosing loop already
     gates so inner loops don't re-gate them *)
  let gated_by : (Ir.label * CS.t) list ref = ref [] in
  List.iter
    (fun l ->
      let enclosing_gated =
        List.fold_left
          (fun acc (h, cs) ->
            match List.find_opt (fun l' -> l'.Loops.header = h) loops with
            | Some outer
              when outer.Loops.header <> l.Loops.header
                   && Loops.LS.subset l.Loops.blocks outer.Loops.blocks ->
              CS.union acc cs
            | _ -> acc)
          CS.empty !gated_by
      in
      let idle = Compuse.loop_idle cu f l in
      let gateable =
        CS.filter
          (fun c ->
            CS.mem c core_use (* used elsewhere on this core *)
            && List.mem c m.Machine.components)
          idle
      in
      let suppressed = CS.inter gateable enclosing_gated in
      let candidates = CS.diff gateable suppressed in
      if not (CS.is_empty gateable) then begin
        let est = loop_est f l in
        let to_gate =
          CS.filter
            (fun c ->
              est.Est.total_cycles
              >= opts.break_even_scale
                 *. float_of_int (break_even_for m classes c))
            candidates
        in
        let below = CS.diff candidates to_gate in
        let inserted, landings =
          if CS.is_empty to_gate then (CS.empty, 0)
          else
            match Region.preheader ?cfg_of f l with
            | None -> (CS.empty, 0)
            | Some pre ->
              let loc = Region.loop_loc f l in
              Region.append ~loc f pre (Ir.Pg_off to_gate);
              let ls = Region.exit_landings f l in
              List.iter
                (fun landing ->
                  Region.prepend ~loc f landing (Ir.Pg_on to_gate))
                ls;
              gated_by := (l.Loops.header, to_gate) :: !gated_by;
              changes := !changes + 1 + List.length l.Loops.exits;
              (to_gate, List.length ls)
        in
        if Report.enabled report then
          Report.add report
            (Report.Gating_insert
               {
                 gi_func = f.Prog.fname;
                 gi_site = Printf.sprintf "loop@b%d" l.Loops.header;
                 gi_kind = Report.Loop_gate;
                 gi_components = comp_names inserted;
                 gi_suppressed = comp_names suppressed;
                 gi_below_break_even = comp_names below;
                 gi_est_cycles = est.Est.total_cycles;
                 gi_landings = landings;
               })
      end)
    loops;
  !changes

(** Gate never-used components at each core entry. *)
let entry_gating ?(report = Report.disabled) (m : Machine.t) (prog : Prog.t)
    (cu : Compuse.t) : int =
  let changes = ref 0 in
  List.iter
    (fun entry ->
      match Prog.find_func prog entry with
      | None -> ()
      | Some f ->
        let never =
          CS.filter
            (fun c -> List.mem c m.Machine.components)
            (Compuse.never_used cu ~entry)
        in
        if not (CS.is_empty never) then begin
          let b = Prog.block f f.Prog.entry in
          Region.prepend f b (Ir.Pg_off never);
          incr changes;
          if Report.enabled report then
            Report.add report
              (Report.Gating_insert
                 {
                   gi_func = f.Prog.fname;
                   gi_site = "entry";
                   gi_kind = Report.Entry_gate;
                   gi_components = comp_names never;
                   gi_suppressed = [];
                   gi_below_break_even = [];
                   gi_est_cycles = 0.0;
                   gi_landings = 0;
                 })
        end)
    (Prog.entries prog);
  !changes

let insert ?(opts = default_options) ?(report = Report.disabled) ?am
    (m : Machine.t) (prog : Prog.t) : int =
  let cu =
    match am with Some am -> Manager.compuse am | None -> Compuse.compute prog
  in
  let find_loops = Option.map Manager.loops am in
  let loop_est = Option.map (fun am -> Manager.loop_est am m) am in
  let cfg_of = Option.map Manager.cfg am in
  let core_use = core_use_table prog cu in
  let fclasses = func_classes prog m in
  let n =
    if opts.loop_gating then
      List.fold_left
        (fun acc f ->
          let u =
            Option.value ~default:CS.empty
              (Hashtbl.find_opt core_use f.Prog.fname)
          in
          let classes =
            Option.value ~default:[]
              (Hashtbl.find_opt fclasses f.Prog.fname)
          in
          acc
          + loop_gating ~opts ~report ?find_loops ?loop_est ?cfg_of ~classes
              m prog cu ~core_use:u f)
        0 (Prog.funcs prog)
    else 0
  in
  let n =
    n + if opts.entry_gating then entry_gating ~report m prog cu else 0
  in
  n

(* ------------------------------------------------------------------ *)
(* Sink-N-Hoist merge                                                  *)
(* ------------------------------------------------------------------ *)

(** Per-block rewrite; see module header for the three rules.
    [classes] are the core classes that can execute this block (for the
    drop-short-region break-even; machine worst case when empty). *)
let merge_block ?(report = Report.disabled) ?(classes = []) ~fname
    (m : Machine.t) (b : Ir.block) : int =
  let changes = ref 0 in
  let emit rule comps =
    if Report.enabled report then
      Report.add report
        (Report.Gating_merge
           {
             gm_func = fname;
             gm_block = b.Ir.bid;
             gm_rule = rule;
             gm_components = comps;
           })
  in
  let arr = Array.of_list b.Ir.instrs in
  let n = Array.length arr in
  (* cumulative nominal cycles before each position, counting only
     non-gating instructions *)
  let cycles_before = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let c =
      match arr.(i).Ir.idesc with
      | Ir.Pg_off _ | Ir.Pg_on _ -> 0
      | _ -> Ir.base_latency arr.(i)
    in
    cycles_before.(i + 1) <- cycles_before.(i) + c
  done;
  (* last_on.(c) / last_off.(c): position of the latest un-invalidated
     gating instruction affecting component c *)
  let last_on = Array.make Component.count (-1) in
  let last_off = Array.make Component.count (-1) in
  let remove_comp pos comp =
    match arr.(pos).Ir.idesc with
    | Ir.Pg_off cs -> arr.(pos).Ir.idesc <- Ir.Pg_off (CS.remove comp cs)
    | Ir.Pg_on cs -> arr.(pos).Ir.idesc <- Ir.Pg_on (CS.remove comp cs)
    | _ -> ()
  in
  for i = 0 to n - 1 do
    match arr.(i).Ir.idesc with
    | Ir.Pg_on cs ->
      CS.iter
        (fun c ->
          let k = Component.index c in
          if last_off.(k) >= 0 then begin
            (* pg_off ... pg_on: keep only if region length >= break-even *)
            let region = cycles_before.(i) - cycles_before.(last_off.(k)) in
            if region < break_even_for m classes c then begin
              remove_comp last_off.(k) c;
              remove_comp i c;
              incr changes;
              emit "drop-short-region" [ Component.to_string c ];
              last_off.(k) <- -1;
              last_on.(k) <- -1
            end
            else begin
              last_off.(k) <- -1;
              last_on.(k) <- i
            end
          end
          else last_on.(k) <- i)
        cs
    | Ir.Pg_off cs ->
      CS.iter
        (fun c ->
          let k = Component.index c in
          if last_on.(k) >= 0 then begin
            (* pg_on ... pg_off with no use in between: stay off *)
            remove_comp last_on.(k) c;
            remove_comp i c;
            incr changes;
            emit "cancel-stay-off" [ Component.to_string c ];
            last_on.(k) <- -1;
            last_off.(k) <- -1
          end
          else begin
            last_on.(k) <- -1;
            last_off.(k) <- i
          end)
        cs
    | _ ->
      let c = Ir.component_of arr.(i) in
      let k = Component.index c in
      last_on.(k) <- -1;
      last_off.(k) <- -1
  done;
  (* merge adjacent same-polarity gating instructions, drop empties *)
  let merged = ref [] in
  Array.iter
    (fun (i : Ir.instr) ->
      match (i.Ir.idesc, !merged) with
      | ((Ir.Pg_off s | Ir.Pg_on s), _) when CS.is_empty s -> incr changes
      | (Ir.Pg_off s, prev :: rest) -> (
        match prev.Ir.idesc with
        | Ir.Pg_off s' ->
          prev.Ir.idesc <- Ir.Pg_off (CS.union s s');
          incr changes;
          emit "merge-adjacent" (comp_names (CS.union s s'));
          merged := prev :: rest
        | _ -> merged := i :: !merged)
      | (Ir.Pg_on s, prev :: rest) -> (
        match prev.Ir.idesc with
        | Ir.Pg_on s' ->
          prev.Ir.idesc <- Ir.Pg_on (CS.union s s');
          incr changes;
          emit "merge-adjacent" (comp_names (CS.union s s'));
          merged := prev :: rest
        | _ -> merged := i :: !merged)
      | _ -> merged := i :: !merged)
    arr;
  b.Ir.instrs <- List.rev !merged;
  !changes

let merge ?(report = Report.disabled) (m : Machine.t) (prog : Prog.t) : int =
  let fclasses = func_classes prog m in
  List.fold_left
    (fun acc f ->
      let classes =
        Option.value ~default:[] (Hashtbl.find_opt fclasses f.Prog.fname)
      in
      let n =
        List.fold_left
          (fun acc b ->
            acc + merge_block ~report ~classes ~fname:f.Prog.fname m b)
          0 (Prog.blocks_in_order f)
      in
      if n > 0 then Prog.touch f;
      acc + n)
    0 (Prog.funcs prog)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type counts = { off_instrs : int; on_instrs : int; components_toggled : int }

let count_gating (prog : Prog.t) : counts =
  List.fold_left
    (fun acc f ->
      Prog.fold_instrs f
        (fun acc _ i ->
          match i.Ir.idesc with
          | Ir.Pg_off s ->
            { acc with
              off_instrs = acc.off_instrs + 1;
              components_toggled = acc.components_toggled + CS.cardinal s }
          | Ir.Pg_on s ->
            { acc with
              on_instrs = acc.on_instrs + 1;
              components_toggled = acc.components_toggled + CS.cardinal s }
          | _ -> acc)
        acc)
    { off_instrs = 0; on_instrs = 0; components_toggled = 0 }
    (Prog.funcs prog)
