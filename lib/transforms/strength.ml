(** Strength reduction: integer multiplications by power-of-two constants
    become shifts.

    Besides the latency win (shifter: 1 cycle vs multiplier: 2), this
    moves work from the leaky multiplier onto the cheap shifter, which can
    turn the multiplier idle for whole regions and hand the gating pass a
    new candidate — one of the interactions the ablation quantifies.

    Division/modulo are deliberately not reduced: an arithmetic shift
    right floors, while C division truncates toward zero, so they disagree
    on negative operands. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog

let log2_exact n =
  if n <= 0 then None
  else begin
    let rec go k v = if v = 1 then Some k else if v land 1 = 1 then None else go (k + 1) (v lsr 1) in
    go 0 n
  end

let run_func (f : Prog.func) : int =
  let changed = ref 0 in
  Prog.iter_instrs f (fun _ i ->
      match i.Ir.idesc with
      | Ir.Binop (Ir.Mul, d, a, Ir.Imm (Ir.Cint n))
      | Ir.Binop (Ir.Mul, d, Ir.Imm (Ir.Cint n), a) -> (
        match log2_exact n with
        | Some k ->
          incr changed;
          i.Ir.idesc <- Ir.Binop (Ir.Shl, d, a, Ir.Imm (Ir.Cint k))
        | None -> ())
      | _ -> ());
  if !changed > 0 then Prog.touch f;
  !changed

let pass : Pass.func_pass =
  {
    Pass.name = "strength-reduce";
    (* a Mul becomes a Shl with the same def and the same register
       uses, so even liveness survives *)
    preserves =
      Lp_analysis.Manager.[ Cfg; Dominators; Loops; Liveness ];
    run = (fun _ _ f -> run_func f);
  }
