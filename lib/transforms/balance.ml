(** Pattern-aware pipeline balancing.

    A pipeline's throughput is set by its slowest stage, so every faster
    stage has slack exactly equal to the bottleneck's service time minus
    its own.  This pass converts that slack into energy: each worker stage
    is scaled down to the lowest operating point at which it still matches
    the bottleneck's service rate.  (The master stage is left at nominal:
    it also executes the program's sequential sections.)

    Outlined bodies of non-pipeline patterns get an explicit [dvfs] to
    nominal at entry, so a core that previously served a slow pipeline
    stage is restored before doing bandwidth-critical doall work. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point
module Machine = Lp_machine.Machine
module Est = Lp_analysis.Est
module Pattern = Lp_patterns.Pattern

type options = { headroom : float (** over-provision factor, e.g. 1.1 *) }

let default_options = { headroom = 1.10 }

(** Per-iteration nominal-time estimate (ns) of one stage function. *)
let stage_time ?am (m : Machine.t) (prog : Prog.t) name : Est.func_est option
    =
  match Prog.find_func prog name with
  | None -> None
  | Some f ->
    Some
      (match am with
      | Some am -> Lp_analysis.Manager.func_est am m f
      | None -> Est.func_estimate m prog f)

let prepend_dvfs (prog : Prog.t) name level : bool =
  match Prog.find_func prog name with
  | None -> false
  | Some f ->
    let b = Prog.block f f.Prog.entry in
    (* avoid duplicating if the pass runs twice *)
    let already =
      match b.Ir.instrs with
      | { Ir.idesc = Ir.Dvfs _; _ } :: _ -> true
      | _ -> false
    in
    if already then false
    else begin
      Region.prepend f b (Ir.Dvfs level);
      true
    end

(** Pick the lowest level at which a stage with nominal estimate [est]
    still completes within [budget_cycles] (both in nominal cycles). *)
let choose_level (pm : Power_model.t) (est : Est.func_est) ~budget_cycles
    ~headroom : int =
  let nominal = Power_model.nominal pm in
  let mu = est.Est.mem_fraction in
  let fits (p : Operating_point.t) =
    let stretched =
      est.Est.total_cycles
      *. (((1.0 -. mu)
           *. (nominal.Operating_point.freq_mhz /. p.Operating_point.freq_mhz))
          +. mu)
    in
    stretched *. headroom <= budget_cycles
  in
  match List.find_opt fits (Power_model.points pm) with
  | Some p -> p.Operating_point.level
  | None -> nominal.Operating_point.level

let run ?(opts = default_options) ?am (m : Machine.t) (prog : Prog.t)
    (info : Par_info.t) : int =
  let entries = Prog.entries prog in
  (* power model of the core a stage entry function runs on: entry [i]
     executes on core [i] (the simulator's layout) *)
  let pm_of_entry name =
    let rec idx i = function
      | [] -> None
      | e :: _ when String.equal e name -> Some i
      | _ :: rest -> idx (i + 1) rest
    in
    match idx 0 entries with
    | Some i when i < Machine.n_cores m -> Machine.power_of_core m i
    | _ -> Machine.ref_power m
  in
  let fclasses = lazy (Gating.func_classes prog m) in
  let changes = ref 0 in
  List.iter
    (fun (cg : Par_info.instance_codegen) ->
      match cg.Par_info.inst.Pattern.kind with
      | Pattern.Pipeline _ | Pattern.Prodcons -> (
        let ests =
          List.filter_map (stage_time ?am m prog) cg.Par_info.stage_funcs
        in
        if List.length ests = List.length cg.Par_info.stage_funcs then begin
          let bottleneck =
            List.fold_left
              (fun acc (e : Est.func_est) -> Float.max acc e.Est.total_cycles)
              1.0 ests
          in
          List.iteri
            (fun s name ->
              if s > 0 then begin
                let est = List.nth ests s in
                let pm = pm_of_entry name in
                let level =
                  choose_level pm est ~budget_cycles:bottleneck
                    ~headroom:opts.headroom
                in
                if level <> Power_model.max_level pm then
                  if prepend_dvfs prog name level then incr changes
              end)
            cg.Par_info.stage_funcs
        end)
      | Pattern.Doall | Pattern.Reduction _ | Pattern.Farm -> (
        (* restore nominal at entry of the outlined body — only when
           every class that can execute the body shares one ladder (a
           raw level is meaningless across incompatible ladders) *)
        match cg.Par_info.body_func with
        | Some name -> (
          let classes =
            Option.value ~default:[]
              (Hashtbl.find_opt (Lazy.force fclasses) name)
          in
          match Dvfs.ladder_of_classes m classes with
          | Some (_, pm) ->
            if prepend_dvfs prog name (Power_model.max_level pm) then
              incr changes
          | None -> ())
        | None -> ()))
    info.Par_info.instances;
  !changes
