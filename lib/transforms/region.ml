(** Loop-region instrumentation: create a preheader to hold instructions
    executed once before a natural loop, and split exit edges to hold
    instructions executed once after it.  Shared by the gating and DVFS
    insertion passes. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Cfg = Lp_analysis.Cfg
module Loops = Lp_analysis.Loops

let retarget_term term ~from ~to_ =
  match term with
  | Ir.Jmp l when l = from -> Ir.Jmp to_
  | Ir.Br (c, l1, l2) ->
    Ir.Br
      (c, (if l1 = from then to_ else l1), if l2 = from then to_ else l2)
  | Ir.Jmp _ | Ir.Ret _ -> term

(** Create (or reuse) a preheader for [l]: a block through which every
    entry into the loop passes.  Returns [None] when the loop header is
    the function entry (cannot be given a preheader without changing the
    entry). *)
let preheader ?(cfg_of = Cfg.build) (f : Prog.func) (l : Loops.loop) :
    Ir.block option =
  if l.Loops.header = f.Prog.entry then None
  else begin
    let cfg = cfg_of f in
    let outside_preds =
      List.filter
        (fun p -> not (Loops.contains l p))
        (Cfg.preds cfg l.Loops.header)
    in
    match outside_preds with
    | [ p ] -> (
      (* a unique outside predecessor that only jumps to the header is
         already a preheader *)
      let pb = Prog.block f p in
      match pb.Ir.term with
      | Ir.Jmp _ -> Some pb
      | Ir.Br _ | Ir.Ret _ ->
        let nb = Prog.new_block f in
        nb.Ir.term <- Ir.Jmp l.Loops.header;
        pb.Ir.term <-
          retarget_term pb.Ir.term ~from:l.Loops.header ~to_:nb.Ir.bid;
        Prog.touch f;
        Some nb)
    | _ ->
      let nb = Prog.new_block f in
      nb.Ir.term <- Ir.Jmp l.Loops.header;
      List.iter
        (fun p ->
          let pb = Prog.block f p in
          pb.Ir.term <-
            retarget_term pb.Ir.term ~from:l.Loops.header ~to_:nb.Ir.bid)
        outside_preds;
      Prog.touch f;
      Some nb
  end

(** Split every exit edge of [l], returning the landing blocks (one per
    exit edge) into which post-loop instructions can be inserted. *)
let exit_landings (f : Prog.func) (l : Loops.loop) : Ir.block list =
  List.map
    (fun (inside, outside) ->
      let nb = Prog.new_block f in
      nb.Ir.term <- Ir.Jmp outside;
      let ib = Prog.block f inside in
      ib.Ir.term <- retarget_term ib.Ir.term ~from:outside ~to_:nb.Ir.bid;
      Prog.touch f;
      nb)
    l.Loops.exits

(** Provenance for instructions synthesised next to existing code: an
    explicit [?loc] wins; otherwise inherit from the neighbouring
    instruction ([last] for appends, first for prepends) so gating/DVFS
    brackets attribute to the region they guard rather than to "no
    source line". *)
let neighbour_loc ?loc (instrs : Ir.instr list) ~last : Ir.loc =
  match loc with
  | Some l -> l
  | None -> (
    let n = match (last, instrs) with
      | (false, i :: _) -> Some i
      | (false, []) -> None
      | (true, _) -> (
        match List.rev instrs with i :: _ -> Some i | [] -> None)
    in
    match n with Some i -> i.Ir.loc | None -> Ir.no_loc)

(** Provenance of a loop: the first source-located instruction of the
    header block ([Ir.no_loc] for fully synthetic loops).  Gating and
    DVFS brackets inserted around a loop are stamped with this, so the
    profiler attributes transition overheads to the loop they guard. *)
let loop_loc (f : Prog.func) (l : Loops.loop) : Ir.loc =
  let hb = Prog.block f l.Loops.header in
  let rec first = function
    | [] -> Ir.no_loc
    | (i : Ir.instr) :: rest ->
      if i.Ir.loc.Ir.line > 0 then i.Ir.loc else first rest
  in
  first hb.Ir.instrs

(** Append an instruction to a block. *)
let append ?loc (f : Prog.func) (b : Ir.block) idesc =
  let loc = neighbour_loc ?loc b.Ir.instrs ~last:true in
  b.Ir.instrs <- b.Ir.instrs @ [ Prog.new_instr ~loc f idesc ];
  Prog.touch f

(** Prepend an instruction to a block. *)
let prepend ?loc (f : Prog.func) (b : Ir.block) idesc =
  let loc = neighbour_loc ?loc b.Ir.instrs ~last:false in
  b.Ir.instrs <- Prog.new_instr ~loc f idesc :: b.Ir.instrs;
  Prog.touch f
