(** Loop-region instrumentation: create a preheader to hold instructions
    executed once before a natural loop, and split exit edges to hold
    instructions executed once after it.  Shared by the gating and DVFS
    insertion passes. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Cfg = Lp_analysis.Cfg
module Loops = Lp_analysis.Loops

let retarget_term term ~from ~to_ =
  match term with
  | Ir.Jmp l when l = from -> Ir.Jmp to_
  | Ir.Br (c, l1, l2) ->
    Ir.Br
      (c, (if l1 = from then to_ else l1), if l2 = from then to_ else l2)
  | Ir.Jmp _ | Ir.Ret _ -> term

(** Create (or reuse) a preheader for [l]: a block through which every
    entry into the loop passes.  Returns [None] when the loop header is
    the function entry (cannot be given a preheader without changing the
    entry). *)
let preheader ?(cfg_of = Cfg.build) (f : Prog.func) (l : Loops.loop) :
    Ir.block option =
  if l.Loops.header = f.Prog.entry then None
  else begin
    let cfg = cfg_of f in
    let outside_preds =
      List.filter
        (fun p -> not (Loops.contains l p))
        (Cfg.preds cfg l.Loops.header)
    in
    match outside_preds with
    | [ p ] -> (
      (* a unique outside predecessor that only jumps to the header is
         already a preheader *)
      let pb = Prog.block f p in
      match pb.Ir.term with
      | Ir.Jmp _ -> Some pb
      | Ir.Br _ | Ir.Ret _ ->
        let nb = Prog.new_block f in
        nb.Ir.term <- Ir.Jmp l.Loops.header;
        pb.Ir.term <-
          retarget_term pb.Ir.term ~from:l.Loops.header ~to_:nb.Ir.bid;
        Prog.touch f;
        Some nb)
    | _ ->
      let nb = Prog.new_block f in
      nb.Ir.term <- Ir.Jmp l.Loops.header;
      List.iter
        (fun p ->
          let pb = Prog.block f p in
          pb.Ir.term <-
            retarget_term pb.Ir.term ~from:l.Loops.header ~to_:nb.Ir.bid)
        outside_preds;
      Prog.touch f;
      Some nb
  end

(** Split every exit edge of [l], returning the landing blocks (one per
    exit edge) into which post-loop instructions can be inserted. *)
let exit_landings (f : Prog.func) (l : Loops.loop) : Ir.block list =
  List.map
    (fun (inside, outside) ->
      let nb = Prog.new_block f in
      nb.Ir.term <- Ir.Jmp outside;
      let ib = Prog.block f inside in
      ib.Ir.term <- retarget_term ib.Ir.term ~from:outside ~to_:nb.Ir.bid;
      Prog.touch f;
      nb)
    l.Loops.exits

(** Append an instruction to a block. *)
let append (f : Prog.func) (b : Ir.block) idesc =
  b.Ir.instrs <- b.Ir.instrs @ [ Prog.new_instr f idesc ];
  Prog.touch f

(** Prepend an instruction to a block. *)
let prepend (f : Prog.func) (b : Ir.block) idesc =
  b.Ir.instrs <- Prog.new_instr f idesc :: b.Ir.instrs;
  Prog.touch f
