(** Three-address intermediate representation.

    The IR is a conventional virtual-register CFG form (not SSA): each
    function is a set of basic blocks ending in a terminator.  Scalar
    MiniC variables are lowered to dedicated virtual registers; arrays
    live in named memory symbols (shared memory for globals, per-frame
    local memory for locals).

    Two instruction families distinguish this IR from a vanilla compiler
    IR and carry the paper's contribution:

    - {e power-management pseudo-instructions}: [Pg_off]/[Pg_on] gate a set
      of datapath components, [Dvfs] switches the core's operating point;
    - {e multicore runtime intrinsics}: blocking channel [Send]/[Recv],
      [Barrier], and [Faa] (fetch-and-add on a shared cell) which the
      pattern-driven parallelizer emits. *)

module Component = Lp_power.Component

type reg = int
type label = int

type ty = I | F

let ty_to_string = function I -> "i" | F -> "f"

type const = Cint of int | Cfloat of float

let const_ty = function Cint _ -> I | Cfloat _ -> F

type operand = Reg of reg | Imm of const

(** Integer and float binary operators.  Comparison operators produce an
    integer 0/1 in both families. *)
type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | And | Or | Xor
  | Lt | Le | Gt | Ge | Eq | Ne
  | Fadd | Fsub | Fmul | Fdiv
  | Flt | Fle | Fgt | Fge | Feq | Fne

type unop = Neg | Not | Bnot | Fneg | I2f | F2i

(** Memory symbols name arrays (or shared scalar cells, size 1).
    [Rom] marks read-only globals that the constant-promotion pass has
    proven are never written: the tooling places them in on-chip
    ROM/scratchpad, so loads bypass the shared bus. *)
type space = Shared | Frame | Rom

type sym = { sym_name : string; sym_space : space }

let sym_to_string s =
  (match s.sym_space with Shared -> "@" | Frame -> "%%" | Rom -> "@ro:")
  ^ s.sym_name

type idesc =
  | Const of reg * const
  | Move of reg * operand
  | Binop of binop * reg * operand * operand
  | Unop of unop * reg * operand
  | Mac of reg * operand * operand * operand
      (** [Mac (d, a, b, c)]: d := a + b * c on the MAC unit *)
  | Load of reg * sym * operand           (** d := sym[idx] *)
  | Store of sym * operand * operand      (** sym[idx] := v *)
  | Call of reg option * string * operand list
  | Pg_off of Component.Set.t
  | Pg_on of Component.Set.t
  | Dvfs of int                           (** switch to operating level *)
  | Send of int * operand                 (** channel id, value *)
  | Recv of reg * int * ty                (** d := recv(chan) *)
  | Barrier of int                        (** barrier id *)
  | Faa of reg * sym * operand            (** d := fetch_add(sym[0], v) *)

(** Source provenance: the MiniC position an instruction was lowered
    from.  [no_loc] (line 0) marks compiler-synthesised instructions with
    no source counterpart (runtime glue, some power pseudo-instructions).
    Transforms must preserve provenance: a cloned/fused/hoisted
    instruction keeps the [loc] of the instruction it came from, and
    instructions inserted next to existing code inherit a neighbour's
    [loc] (see [Region.append]/[prepend]).  The energy profiler keys its
    per-line attribution on this field. *)
type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

type instr = { iid : int; mutable idesc : idesc; loc : loc }

type term =
  | Jmp of label
  | Br of operand * label * label  (** if cond <> 0 then l1 else l2 *)
  | Ret of operand option

type block = {
  bid : label;
  mutable instrs : instr list;
  mutable term : term;
}

(* ------------------------------------------------------------------ *)
(* Operand / register helpers                                          *)
(* ------------------------------------------------------------------ *)

let operand_regs = function Reg r -> [ r ] | Imm _ -> []

(** Virtual registers read by an instruction. *)
let uses (i : instr) : reg list =
  match i.idesc with
  | Const _ -> []
  | Move (_, a) | Unop (_, _, a) -> operand_regs a
  | Binop (_, _, a, b) -> operand_regs a @ operand_regs b
  | Mac (_, a, b, c) -> operand_regs a @ operand_regs b @ operand_regs c
  | Load (_, _, idx) -> operand_regs idx
  | Store (_, idx, v) -> operand_regs idx @ operand_regs v
  | Call (_, _, args) -> List.concat_map operand_regs args
  | Pg_off _ | Pg_on _ | Dvfs _ | Barrier _ -> []
  | Send (_, v) -> operand_regs v
  | Recv _ -> []
  | Faa (_, _, v) -> operand_regs v

(** Virtual register written by an instruction, if any. *)
let def (i : instr) : reg option =
  match i.idesc with
  | Const (d, _) | Move (d, _) | Unop (_, d, _) | Binop (_, d, _, _)
  | Mac (d, _, _, _) | Load (d, _, _) | Recv (d, _, _) | Faa (d, _, _) ->
    Some d
  | Call (d, _, _) -> d
  | Store _ | Pg_off _ | Pg_on _ | Dvfs _ | Send _ | Barrier _ -> None

let term_uses = function
  | Jmp _ -> []
  | Br (c, _, _) -> operand_regs c
  | Ret (Some v) -> operand_regs v
  | Ret None -> []

let term_succs = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ -> []

(* ------------------------------------------------------------------ *)
(* Component usage: which function unit executes each instruction      *)
(* ------------------------------------------------------------------ *)

let binop_component = function
  | Add | Sub | And | Or | Xor | Lt | Le | Gt | Ge | Eq | Ne -> Component.Alu
  | Mul -> Component.Multiplier
  | Div | Mod -> Component.Divider
  | Shl | Shr -> Component.Shifter
  | Fadd | Fsub | Fmul | Fdiv | Flt | Fle | Fgt | Fge | Feq | Fne ->
    Component.Fpu

let unop_component = function
  | Neg | Not | Bnot -> Component.Alu
  | Fneg | I2f | F2i -> Component.Fpu

(** The component an instruction occupies.  Power-management
    pseudo-instructions execute on the ALU (they write control registers);
    runtime intrinsics go through the memory port. *)
let component_of (i : instr) : Component.t =
  match i.idesc with
  | Const _ | Move _ -> Component.Alu
  | Binop (op, _, _, _) -> binop_component op
  | Unop (op, _, _) -> unop_component op
  | Mac _ -> Component.Mac
  | Load _ | Store _ | Faa _ -> Component.Load_store
  | Call _ -> Component.Branch_unit
  | Pg_off _ | Pg_on _ | Dvfs _ -> Component.Alu
  | Send _ | Recv _ | Barrier _ -> Component.Load_store

(** Nominal latency of the instruction in core cycles, excluding memory
    and communication time which the simulator charges separately. *)
let base_latency (i : instr) : int =
  match i.idesc with
  | Const _ | Move _ -> 1
  | Binop (op, _, _, _) -> (
    match binop_component op with
    | Component.Alu -> 1
    | Component.Shifter -> 1
    | Component.Multiplier -> 2
    | Component.Divider -> 10
    | Component.Fpu -> 4
    | Component.Mac | Component.Load_store | Component.Branch_unit -> 1)
  | Unop (op, _, _) -> (
    match unop_component op with Component.Fpu -> 4 | _ -> 1)
  | Mac _ -> 2
  | Load _ | Store _ -> 1 (* plus memory latency in the simulator *)
  | Faa _ -> 2
  | Call _ -> 2
  | Pg_off _ | Pg_on _ -> 1
  | Dvfs _ -> 1
  | Send _ | Recv _ -> 1
  | Barrier _ -> 1

(* ------------------------------------------------------------------ *)
(* Pretty strings                                                      *)
(* ------------------------------------------------------------------ *)

let binop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Shl -> "shl" | Shr -> "shr" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Flt -> "flt" | Fle -> "fle" | Fgt -> "fgt" | Fge -> "fge"
  | Feq -> "feq" | Fne -> "fne"

let unop_to_string = function
  | Neg -> "neg" | Not -> "not" | Bnot -> "bnot" | Fneg -> "fneg"
  | I2f -> "i2f" | F2i -> "f2i"

let const_to_string = function
  | Cint n -> string_of_int n
  | Cfloat f -> Printf.sprintf "%g" f

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm c -> const_to_string c

let idesc_to_string = function
  | Const (d, c) -> Printf.sprintf "r%d = const %s" d (const_to_string c)
  | Move (d, a) -> Printf.sprintf "r%d = %s" d (operand_to_string a)
  | Binop (op, d, a, b) ->
    Printf.sprintf "r%d = %s %s, %s" d (binop_to_string op)
      (operand_to_string a) (operand_to_string b)
  | Unop (op, d, a) ->
    Printf.sprintf "r%d = %s %s" d (unop_to_string op) (operand_to_string a)
  | Mac (d, a, b, c) ->
    Printf.sprintf "r%d = mac %s, %s, %s" d (operand_to_string a)
      (operand_to_string b) (operand_to_string c)
  | Load (d, s, idx) ->
    Printf.sprintf "r%d = load %s[%s]" d (sym_to_string s)
      (operand_to_string idx)
  | Store (s, idx, v) ->
    Printf.sprintf "store %s[%s] = %s" (sym_to_string s)
      (operand_to_string idx) (operand_to_string v)
  | Call (Some d, f, args) ->
    Printf.sprintf "r%d = call %s(%s)" d f
      (String.concat ", " (List.map operand_to_string args))
  | Call (None, f, args) ->
    Printf.sprintf "call %s(%s)" f
      (String.concat ", " (List.map operand_to_string args))
  | Pg_off cs -> Printf.sprintf "pg_off %s" (Component.Set.to_string cs)
  | Pg_on cs -> Printf.sprintf "pg_on %s" (Component.Set.to_string cs)
  | Dvfs l -> Printf.sprintf "dvfs %d" l
  | Send (ch, v) -> Printf.sprintf "send ch%d, %s" ch (operand_to_string v)
  | Recv (d, ch, ty) ->
    Printf.sprintf "r%d = recv.%s ch%d" d (ty_to_string ty) ch
  | Barrier b -> Printf.sprintf "barrier %d" b
  | Faa (d, s, v) ->
    Printf.sprintf "r%d = faa %s, %s" d (sym_to_string s)
      (operand_to_string v)

let term_to_string = function
  | Jmp l -> Printf.sprintf "jmp L%d" l
  | Br (c, l1, l2) ->
    Printf.sprintf "br %s, L%d, L%d" (operand_to_string c) l1 l2
  | Ret (Some v) -> Printf.sprintf "ret %s" (operand_to_string v)
  | Ret None -> "ret"
