(** IR functions and programs. *)

type func = {
  fname : string;
  params : (Ir.reg * Ir.ty) list;
  ret : Ir.ty option;
  entry : Ir.label;
  blocks : (Ir.label, Ir.block) Hashtbl.t;
  mutable block_order : Ir.label list;
      (** layout order; entry first; analyses iterate in this order *)
  mutable frame_arrays : (string * Ir.ty * int) list;
      (** local arrays: name, element type, length *)
  mutable version : int;
      (** monotonic mutation stamp; every IR change must bump it (via
          {!touch}) so cached analyses keyed on it can tell stale results
          from fresh ones *)
  reg_gen : Lp_util.Id_gen.t;
  block_gen : Lp_util.Id_gen.t;
  instr_gen : Lp_util.Id_gen.t;
}

(** Bump [f]'s mutation stamp.  This is the single invalidation funnel
    for the analysis cache: call it after any in-place change to the
    function's blocks, instructions or terminators that did not go
    through a [Prog] mutator (which touch themselves). *)
let touch f = f.version <- f.version + 1

let version f = f.version

type global = {
  gsym : string;
  gty : Ir.ty;
  gsize : int;                (** 1 for scalars *)
  ginit : int list option;    (** initialiser for integer globals *)
}

(** How the program occupies the machine. *)
type layout =
  | Sequential
      (** one core runs [main]; other cores idle (and are a leakage
          liability unless the compiler gates them) *)
  | Parallel of {
      entries : string list;  (** entry function of each core, in order *)
      n_channels : int;
      n_barriers : int;
      chan_capacity : int;
    }

type t = {
  globals : global list;
  funcs : (string, func) Hashtbl.t;
  mutable layout : layout;
}

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let create_func ~name ~params ~ret : func =
  let reg_gen = Lp_util.Id_gen.create () in
  let params = List.map (fun ty -> (Lp_util.Id_gen.fresh reg_gen, ty)) params in
  let block_gen = Lp_util.Id_gen.create () in
  let entry = Lp_util.Id_gen.fresh block_gen in
  let blocks = Hashtbl.create 16 in
  Hashtbl.replace blocks entry
    { Ir.bid = entry; instrs = []; term = Ir.Ret None };
  {
    fname = name;
    params;
    ret;
    entry;
    blocks;
    block_order = [ entry ];
    frame_arrays = [];
    version = 0;
    reg_gen;
    block_gen;
    instr_gen = Lp_util.Id_gen.create ();
  }

let block f l =
  match Hashtbl.find_opt f.blocks l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Prog.block: no L%d in %s" l f.fname)

let new_reg f = Lp_util.Id_gen.fresh f.reg_gen

let new_block f : Ir.block =
  let bid = Lp_util.Id_gen.fresh f.block_gen in
  let b = { Ir.bid; instrs = []; term = Ir.Ret None } in
  Hashtbl.replace f.blocks bid b;
  f.block_order <- f.block_order @ [ bid ];
  touch f;
  b

let new_instr ?(loc = Ir.no_loc) f idesc : Ir.instr =
  { Ir.iid = Lp_util.Id_gen.fresh f.instr_gen; idesc; loc }

let add_frame_array f ~name ~ty ~len =
  f.frame_arrays <- f.frame_arrays @ [ (name, ty, len) ];
  touch f

(** Blocks in layout order. *)
let blocks_in_order f = List.map (block f) f.block_order

let iter_blocks f g = List.iter g (blocks_in_order f)

let iter_instrs f g =
  iter_blocks f (fun b -> List.iter (fun i -> g b i) b.Ir.instrs)

let fold_instrs f g acc =
  List.fold_left
    (fun acc b -> List.fold_left (fun acc i -> g acc b i) acc b.Ir.instrs)
    acc (blocks_in_order f)

let instr_count f = fold_instrs f (fun n _ _ -> n + 1) 0

(** Remove blocks not in [block_order] from the table (used after CFG
    simplification). *)
let prune_blocks f =
  let keep = List.sort_uniq compare f.block_order in
  Hashtbl.iter
    (fun l _ -> if not (List.mem l keep) then Hashtbl.remove f.blocks l)
    (Hashtbl.copy f.blocks);
  touch f

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let create ~globals : t =
  { globals; funcs = Hashtbl.create 16; layout = Sequential }

let add_func t f =
  if Hashtbl.mem t.funcs f.fname then
    invalid_arg ("Prog.add_func: duplicate " ^ f.fname);
  Hashtbl.replace t.funcs f.fname f

let find_func t name = Hashtbl.find_opt t.funcs name

let func_exn t name =
  match find_func t name with
  | Some f -> f
  | None -> invalid_arg ("Prog.func_exn: no function " ^ name)

let funcs t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.funcs []
  |> List.sort (fun a b -> compare a.fname b.fname)

let global t name = List.find_opt (fun g -> g.gsym = name) t.globals

let entries t =
  match t.layout with
  | Sequential -> [ "main" ]
  | Parallel { entries; _ } -> entries

let n_cores_used t = List.length (entries t)

let total_instrs t =
  List.fold_left (fun acc f -> acc + instr_count f) 0 (funcs t)

(** Program-wide mutation stamp: changes whenever any function is
    touched (or a function is added).  Program-level analyses (component
    use, static estimation, which follow calls across functions) are
    cached against this. *)
let prog_version t =
  Hashtbl.fold (fun _ f acc -> acc + f.version) t.funcs (Hashtbl.length t.funcs)
