(** IR structural verifier.

    Checks that transformations preserve the structural invariants the
    simulator and analyses rely on.  Run after every pass in tests. *)

exception Invalid of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let verify_func (prog : Prog.t) (f : Prog.func) : unit =
  (* block_order is consistent with the table and has no duplicates *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then fail "%s: block L%d listed twice" f.Prog.fname l;
      Hashtbl.replace seen l ();
      if not (Hashtbl.mem f.Prog.blocks l) then
        fail "%s: block L%d in order but not in table" f.Prog.fname l)
    f.Prog.block_order;
  (match f.Prog.block_order with
  | entry :: _ when entry = f.Prog.entry -> ()
  | _ -> fail "%s: entry block must be first in layout" f.Prog.fname);
  (* all branch targets exist *)
  Prog.iter_blocks f (fun b ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem seen l) then
            fail "%s: L%d branches to unknown L%d" f.Prog.fname b.Ir.bid l)
        (Ir.term_succs b.Ir.term));
  (* return arity matches signature *)
  Prog.iter_blocks f (fun b ->
      match (b.Ir.term, f.Prog.ret) with
      | (Ir.Ret (Some _), None) ->
        fail "%s: L%d returns a value from a void function" f.Prog.fname b.Ir.bid
      | (Ir.Ret None, Some _) ->
        fail "%s: L%d returns no value from a non-void function" f.Prog.fname
          b.Ir.bid
      | (Ir.Ret _, _) | (Ir.Jmp _, _) | (Ir.Br _, _) -> ());
  (* every used register is defined somewhere (params count as defs);
     a full path-sensitive check is overkill for this IR because locals
     are zero-initialised at declaration. *)
  let defined = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace defined r ()) f.Prog.params;
  Prog.iter_instrs f (fun _ i ->
      match Ir.def i with
      | Some d -> Hashtbl.replace defined d ()
      | None -> ());
  Prog.iter_blocks f (fun b ->
      let check_use r =
        if not (Hashtbl.mem defined r) then
          fail "%s: L%d uses undefined register r%d" f.Prog.fname b.Ir.bid r
      in
      List.iter (fun i -> List.iter check_use (Ir.uses i)) b.Ir.instrs;
      List.iter check_use (Ir.term_uses b.Ir.term));
  (* memory symbols resolve *)
  let frame_ok name = List.exists (fun (n, _, _) -> n = name) f.Prog.frame_arrays in
  let shared_ok name = Prog.global prog name <> None in
  let check_sym b (s : Ir.sym) =
    match s.Ir.sym_space with
    | Ir.Frame ->
      if not (frame_ok s.Ir.sym_name) then
        fail "%s: L%d references unknown frame array %s" f.Prog.fname b.Ir.bid
          s.Ir.sym_name
    | Ir.Shared | Ir.Rom ->
      if not (shared_ok s.Ir.sym_name) then
        fail "%s: L%d references unknown global %s" f.Prog.fname b.Ir.bid
          s.Ir.sym_name
  in
  (* provenance sanity: locs are never negative (line 0 = synthesised);
     a negative coordinate means a transform fabricated one *)
  Prog.iter_blocks f (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          if i.Ir.loc.Ir.line < 0 || i.Ir.loc.Ir.col < 0 then
            fail "%s: L%d instruction %d has negative source loc %d:%d"
              f.Prog.fname b.Ir.bid i.Ir.iid i.Ir.loc.Ir.line i.Ir.loc.Ir.col)
        b.Ir.instrs);
  Prog.iter_blocks f (fun b ->
      List.iter
        (fun i ->
          match i.Ir.idesc with
          | (Ir.Store (s, _, _) | Ir.Faa (_, s, _))
            when s.Ir.sym_space = Ir.Rom ->
            fail "%s: write to read-only symbol %s" f.Prog.fname s.Ir.sym_name
          | Ir.Load (_, s, _) | Ir.Store (s, _, _) | Ir.Faa (_, s, _) ->
            check_sym b s
          | Ir.Call (_, callee, _)
            when not (Hashtbl.mem prog.Prog.funcs callee) ->
            fail "%s: call to unknown function %s" f.Prog.fname callee
          | _ -> ())
        b.Ir.instrs)

let verify_prog (prog : Prog.t) : unit =
  List.iter (fun f -> verify_func prog f) (Prog.funcs prog);
  (* entry functions exist and take no parameters *)
  List.iter
    (fun entry ->
      match Prog.find_func prog entry with
      | None -> fail "entry function %s missing" entry
      | Some f ->
        if f.Prog.params <> [] then fail "entry %s must take no parameters" entry)
    (Prog.entries prog);
  (* channel and barrier ids are within bounds *)
  match prog.Prog.layout with
  | Prog.Sequential ->
    List.iter
      (fun f ->
        Prog.iter_instrs f (fun _ i ->
            match i.Ir.idesc with
            | Ir.Send _ | Ir.Recv _ | Ir.Barrier _ ->
              fail "%s: runtime intrinsic in a sequential program" f.Prog.fname
            | _ -> ()))
      (Prog.funcs prog)
  | Prog.Parallel { n_channels; n_barriers; _ } ->
    List.iter
      (fun f ->
        Prog.iter_instrs f (fun _ i ->
            match i.Ir.idesc with
            | Ir.Send (ch, _) | Ir.Recv (_, ch, _) ->
              if ch < 0 || ch >= n_channels then
                fail "%s: channel id %d out of range" f.Prog.fname ch
            | Ir.Barrier bid ->
              if bid < 0 || bid >= n_barriers then
                fail "%s: barrier id %d out of range" f.Prog.fname bid
            | _ -> ()))
      (Prog.funcs prog)
