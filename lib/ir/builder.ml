(** Imperative builder used by the lowering pass and by tests to construct
    IR functions block by block. *)

type t = {
  func : Prog.func;
  mutable current : Ir.block;
  mutable sealed : bool;
  mutable cur_loc : Ir.loc;
      (** provenance stamped onto every emitted instruction; the lowering
          pass updates it as it walks statements and expressions *)
}

let create func =
  { func; current = Prog.block func func.Prog.entry; sealed = false;
    cur_loc = Ir.no_loc }

let func t = t.func

let current_block t = t.current

let set_loc t loc = t.cur_loc <- loc

let cur_loc t = t.cur_loc

(** Append an instruction to the current block and return it. *)
let emit t idesc : Ir.instr =
  if t.sealed then invalid_arg "Builder.emit: current block already terminated";
  let i = Prog.new_instr ~loc:t.cur_loc t.func idesc in
  t.current.Ir.instrs <- t.current.Ir.instrs @ [ i ];
  i

(** Emit an instruction producing a fresh register; return the register. *)
let emit_reg t mk : Ir.reg =
  let d = Prog.new_reg t.func in
  ignore (emit t (mk d));
  d

let const t c = emit_reg t (fun d -> Ir.Const (d, c))
let int_const t n = const t (Ir.Cint n)

let binop t op a b = emit_reg t (fun d -> Ir.Binop (op, d, a, b))
let unop t op a = emit_reg t (fun d -> Ir.Unop (op, d, a))
let load t sym idx = emit_reg t (fun d -> Ir.Load (d, sym, idx))
let store t sym idx v = ignore (emit t (Ir.Store (sym, idx, v)))
let move t d a = ignore (emit t (Ir.Move (d, a)))

let call t ~dst fname args = ignore (emit t (Ir.Call (dst, fname, args)))

let call_reg t fname args =
  let d = Prog.new_reg t.func in
  call t ~dst:(Some d) fname args;
  d

(** Terminate the current block. *)
let set_term t term =
  if t.sealed then invalid_arg "Builder.set_term: already terminated";
  t.current.Ir.term <- term;
  t.sealed <- true

(** Start (or continue) emitting into [b]. *)
let switch_to t (b : Ir.block) =
  t.current <- b;
  t.sealed <- false

let new_block t = Prog.new_block t.func

(** Terminate the current block with a jump to a fresh block and switch to
    it; returns the new block. *)
let continue_in_new_block t =
  let b = new_block t in
  set_term t (Ir.Jmp b.Ir.bid);
  switch_to t b;
  b
