(** Lowering from the MiniC AST to the three-address IR.

    Scalar locals become dedicated virtual registers (the IR is not SSA,
    so a mutable local maps to one register for its whole scope).  Local
    arrays become frame memory symbols; globals (scalars and arrays alike)
    become shared-memory symbols, which is what makes them visible to all
    cores after parallelisation.

    The runtime intrinsics emitted by the pattern parallelizer
    ([__send], [__recv], [__sendf], [__recvf], [__barrier], [__faa]) are
    recognised here by name and lowered to dedicated IR instructions. *)

module Ast = Lp_lang.Ast

exception Lower_error of string

let err fmt = Format.kasprintf (fun s -> raise (Lower_error s)) fmt

type binding =
  | Breg of Ir.reg * Ir.ty
  | Barr of Ir.sym * Ir.ty * int

type env = {
  prog_globals : (string, binding) Hashtbl.t;
  mutable scopes : (string, binding) Hashtbl.t list;
  func_rets : (string, Ir.ty option) Hashtbl.t;
}

let lookup env name =
  let rec search = function
    | [] -> (
      match Hashtbl.find_opt env.prog_globals name with
      | Some b -> b
      | None -> err "lowering: unbound %s" name)
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some b -> b
      | None -> search rest)
  in
  search env.scopes

let bind env name b =
  match env.scopes with
  | [] -> err "lowering: no scope"
  | scope :: _ -> Hashtbl.replace scope name b

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | [] -> err "lowering: scope underflow"
  | _ :: rest -> env.scopes <- rest

let ir_ty_of_ast : Ast.ty -> Ir.ty = function
  | Ast.Tint -> Ir.I
  | Ast.Tfloat -> Ir.F
  | Ast.Tvoid | Ast.Tarray _ -> err "lowering: not a scalar type"

let int_binop : Ast.binop -> Ir.binop = function
  | Ast.Add -> Ir.Add | Ast.Sub -> Ir.Sub | Ast.Mul -> Ir.Mul
  | Ast.Div -> Ir.Div | Ast.Mod -> Ir.Mod
  | Ast.Shl -> Ir.Shl | Ast.Shr -> Ir.Shr
  | Ast.Band -> Ir.And | Ast.Bor -> Ir.Or | Ast.Bxor -> Ir.Xor
  | Ast.Lt -> Ir.Lt | Ast.Le -> Ir.Le | Ast.Gt -> Ir.Gt | Ast.Ge -> Ir.Ge
  | Ast.Eq -> Ir.Eq | Ast.Ne -> Ir.Ne
  | Ast.Land | Ast.Lor -> err "lowering: logical op reached int_binop"

let float_binop : Ast.binop -> Ir.binop = function
  | Ast.Add -> Ir.Fadd | Ast.Sub -> Ir.Fsub | Ast.Mul -> Ir.Fmul
  | Ast.Div -> Ir.Fdiv
  | Ast.Lt -> Ir.Flt | Ast.Le -> Ir.Fle | Ast.Gt -> Ir.Fgt | Ast.Ge -> Ir.Fge
  | Ast.Eq -> Ir.Feq | Ast.Ne -> Ir.Fne
  | op -> err "lowering: %s not a float op" (Ast.binop_to_string op)

(** Static type of an expression; the program has already been
    type-checked so this cannot fail in surprising ways. *)
let rec expr_ty env (e : Ast.expr) : Ir.ty =
  match e.Ast.edesc with
  | Ast.Int_lit _ -> Ir.I
  | Ast.Float_lit _ -> Ir.F
  | Ast.Var name -> (
    match lookup env name with
    | Breg (_, ty) -> ty
    | Barr (_, ty, _) -> ty)
  | Ast.Index (name, _) -> (
    match lookup env name with
    | Barr (_, ty, _) -> ty
    | Breg (_, ty) -> ty)
  | Ast.Binop (op, a, _) -> (
    match op with
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land
    | Ast.Lor -> Ir.I
    | _ -> expr_ty env a)
  | Ast.Unop (_, a) -> expr_ty env a
  | Ast.Cast (ty, _) -> ir_ty_of_ast ty
  | Ast.Call (name, _) -> (
    match Hashtbl.find_opt env.func_rets name with
    | Some (Some ty) -> ty
    | Some None -> err "lowering: void call %s used as value" name
    | None -> err "lowering: unknown function %s" name)

(** Require a syntactic integer literal (channel / barrier ids). *)
let literal_int (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Int_lit n -> n
  | _ -> err "lowering: intrinsic id argument must be an integer literal"

(* Source provenance: every instruction emitted while lowering an
   expression or statement is stamped with that node's position.  The
   parallelizer synthesises code at [Ast.dummy_pos] (line 0), which maps
   to [Ir.no_loc]. *)
let loc_of (p : Ast.position) : Ir.loc =
  { Ir.line = p.Ast.line; col = p.Ast.col }

let rec lower_expr env (b : Builder.t) (e : Ast.expr) : Ir.operand =
  let l = loc_of e.Ast.epos in
  Builder.set_loc b l;
  match e.Ast.edesc with
  | Ast.Int_lit n -> Ir.Imm (Ir.Cint n)
  | Ast.Float_lit f -> Ir.Imm (Ir.Cfloat f)
  | Ast.Var name -> (
    match lookup env name with
    | Breg (r, _) -> Ir.Reg r
    | Barr (sym, _, _) ->
      (* a global scalar is a size-1 shared cell *)
      Ir.Reg (Builder.load b sym (Ir.Imm (Ir.Cint 0))))
  | Ast.Index (name, idx) -> (
    let idx_op = lower_expr env b idx in
    Builder.set_loc b l;
    match lookup env name with
    | Barr (sym, _, _) -> Ir.Reg (Builder.load b sym idx_op)
    | Breg _ -> err "lowering: indexing a scalar %s" name)
  | Ast.Unop (op, a) -> (
    let ta = expr_ty env a in
    let a_op = lower_expr env b a in
    Builder.set_loc b l;
    match (op, ta) with
    | (Ast.Neg, Ir.I) -> Ir.Reg (Builder.unop b Ir.Neg a_op)
    | (Ast.Neg, Ir.F) -> Ir.Reg (Builder.unop b Ir.Fneg a_op)
    | (Ast.Not, _) -> Ir.Reg (Builder.unop b Ir.Not a_op)
    | (Ast.Bnot, _) -> Ir.Reg (Builder.unop b Ir.Bnot a_op))
  | Ast.Binop ((Ast.Land | Ast.Lor) as op, a, bb) ->
    lower_short_circuit env b op a bb
  | Ast.Binop (op, a, bb) ->
    let ty = expr_ty env a in
    let a_op = lower_expr env b a in
    let b_op = lower_expr env b bb in
    Builder.set_loc b l;
    let irop = match ty with Ir.I -> int_binop op | Ir.F -> float_binop op in
    Ir.Reg (Builder.binop b irop a_op b_op)
  | Ast.Cast (ty, a) -> (
    let ta = expr_ty env a in
    let a_op = lower_expr env b a in
    Builder.set_loc b l;
    match (ir_ty_of_ast ty, ta) with
    | (Ir.I, Ir.F) -> Ir.Reg (Builder.unop b Ir.F2i a_op)
    | (Ir.F, Ir.I) -> Ir.Reg (Builder.unop b Ir.I2f a_op)
    | (Ir.I, Ir.I) | (Ir.F, Ir.F) -> a_op)
  | Ast.Call (name, args) -> lower_call env b ~name ~args ~want_value:true

(** Short-circuit [&&]/[||] with control flow, producing 0/1. *)
and lower_short_circuit env b op lhs rhs : Ir.operand =
  let result = Prog.new_reg (Builder.func b) in
  let lhs_op = lower_expr env b lhs in
  let rhs_block = Builder.new_block b in
  let short_block = Builder.new_block b in
  let join_block = Builder.new_block b in
  (match op with
  | Ast.Land ->
    Builder.set_term b (Ir.Br (lhs_op, rhs_block.Ir.bid, short_block.Ir.bid))
  | Ast.Lor ->
    Builder.set_term b (Ir.Br (lhs_op, short_block.Ir.bid, rhs_block.Ir.bid))
  | _ -> assert false);
  (* short-circuit arm: result is 0 for &&, 1 for || *)
  Builder.switch_to b short_block;
  Builder.set_loc b (loc_of lhs.Ast.epos);
  let short_val = match op with Ast.Land -> 0 | _ -> 1 in
  Builder.move b result (Ir.Imm (Ir.Cint short_val));
  Builder.set_term b (Ir.Jmp join_block.Ir.bid);
  (* evaluate rhs, normalise to 0/1 *)
  Builder.switch_to b rhs_block;
  let rhs_op = lower_expr env b rhs in
  let norm = Builder.binop b Ir.Ne rhs_op (Ir.Imm (Ir.Cint 0)) in
  Builder.move b result (Ir.Reg norm);
  Builder.set_term b (Ir.Jmp join_block.Ir.bid);
  Builder.switch_to b join_block;
  Ir.Reg result

and lower_call env b ~name ~args ~want_value : Ir.operand =
  let call_loc = Builder.cur_loc b in
  let intrinsic_result idesc_mk =
    let d = Prog.new_reg (Builder.func b) in
    Builder.set_loc b call_loc;
    ignore (Builder.emit b (idesc_mk d));
    Ir.Reg d
  in
  match (name, args) with
  | ("__send", [ ch; v ]) | ("__sendf", [ ch; v ]) ->
    let chan = literal_int ch in
    let v_op = lower_expr env b v in
    Builder.set_loc b call_loc;
    ignore (Builder.emit b (Ir.Send (chan, v_op)));
    Ir.Imm (Ir.Cint 0)
  | ("__recv", [ ch ]) ->
    intrinsic_result (fun d -> Ir.Recv (d, literal_int ch, Ir.I))
  | ("__recvf", [ ch ]) ->
    intrinsic_result (fun d -> Ir.Recv (d, literal_int ch, Ir.F))
  | ("__barrier", [ id ]) ->
    ignore (Builder.emit b (Ir.Barrier (literal_int id)));
    Ir.Imm (Ir.Cint 0)
  | ("__faa", [ cell; amount ]) -> (
    match cell.Ast.edesc with
    | Ast.Var gname -> (
      match lookup env gname with
      | Barr (sym, Ir.I, 1) ->
        let v_op = lower_expr env b amount in
        intrinsic_result (fun d -> Ir.Faa (d, sym, v_op))
      | _ -> err "lowering: __faa needs a global int scalar")
    | _ -> err "lowering: __faa first argument must be a global variable")
  | (("__send" | "__sendf" | "__recv" | "__recvf" | "__barrier" | "__faa"), _)
    ->
    err "lowering: wrong arity for intrinsic %s" name
  | _ ->
    let arg_ops = List.map (lower_expr env b) args in
    Builder.set_loc b call_loc;
    if want_value then Ir.Reg (Builder.call_reg b name arg_ops)
    else begin
      Builder.call b ~dst:None name arg_ops;
      Ir.Imm (Ir.Cint 0)
    end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt env (b : Builder.t) (s : Ast.stmt) : unit =
  let sl = loc_of s.Ast.spos in
  Builder.set_loc b sl;
  match s.Ast.sdesc with
  | Ast.Decl (Ast.Tarray (elem, len), name, _) ->
    let f = Builder.func b in
    let uniq = Printf.sprintf "%s.%d" name (List.length f.Prog.frame_arrays) in
    let sym = { Ir.sym_name = uniq; sym_space = Ir.Frame } in
    Prog.add_frame_array f ~name:uniq ~ty:(ir_ty_of_ast elem) ~len;
    bind env name (Barr (sym, ir_ty_of_ast elem, len))
  | Ast.Decl (ty, name, init) ->
    let r = Prog.new_reg (Builder.func b) in
    let ir_ty = ir_ty_of_ast ty in
    bind env name (Breg (r, ir_ty));
    let init_op =
      match init with
      | Some e -> lower_expr env b e
      | None ->
        (* deterministic zero-initialisation *)
        Ir.Imm (match ir_ty with Ir.I -> Ir.Cint 0 | Ir.F -> Ir.Cfloat 0.0)
    in
    Builder.set_loc b sl;
    Builder.move b r init_op
  | Ast.Assign (name, e) -> (
    let v = lower_expr env b e in
    Builder.set_loc b sl;
    match lookup env name with
    | Breg (r, _) -> Builder.move b r v
    | Barr (sym, _, 1) -> Builder.store b sym (Ir.Imm (Ir.Cint 0)) v
    | Barr _ -> err "lowering: assigning to array %s" name)
  | Ast.Store (name, idx, e) -> (
    let idx_op = lower_expr env b idx in
    let v = lower_expr env b e in
    Builder.set_loc b sl;
    match lookup env name with
    | Barr (sym, _, _) -> Builder.store b sym idx_op v
    | Breg _ -> err "lowering: storing to scalar %s" name)
  | Ast.If (cond, then_b, else_b) ->
    let c = lower_expr env b cond in
    let then_blk = Builder.new_block b in
    let else_blk = Builder.new_block b in
    let join_blk = Builder.new_block b in
    Builder.set_term b (Ir.Br (c, then_blk.Ir.bid, else_blk.Ir.bid));
    Builder.switch_to b then_blk;
    lower_body env b then_b;
    Builder.set_term b (Ir.Jmp join_blk.Ir.bid);
    Builder.switch_to b else_blk;
    lower_body env b else_b;
    Builder.set_term b (Ir.Jmp join_blk.Ir.bid);
    Builder.switch_to b join_blk
  | Ast.While (cond, body) ->
    let cond_blk = Builder.new_block b in
    let body_blk = Builder.new_block b in
    let exit_blk = Builder.new_block b in
    Builder.set_term b (Ir.Jmp cond_blk.Ir.bid);
    Builder.switch_to b cond_blk;
    let c = lower_expr env b cond in
    Builder.set_term b (Ir.Br (c, body_blk.Ir.bid, exit_blk.Ir.bid));
    Builder.switch_to b body_blk;
    lower_body env b body;
    Builder.set_term b (Ir.Jmp cond_blk.Ir.bid);
    Builder.switch_to b exit_blk
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    lower_stmt env b init;
    let cond_blk = Builder.new_block b in
    let body_blk = Builder.new_block b in
    let exit_blk = Builder.new_block b in
    Builder.set_term b (Ir.Jmp cond_blk.Ir.bid);
    Builder.switch_to b cond_blk;
    let c = lower_expr env b cond in
    Builder.set_term b (Ir.Br (c, body_blk.Ir.bid, exit_blk.Ir.bid));
    Builder.switch_to b body_blk;
    lower_body env b body;
    lower_stmt env b step;
    Builder.set_term b (Ir.Jmp cond_blk.Ir.bid);
    pop_scope env;
    Builder.switch_to b exit_blk
  | Ast.Return e_opt ->
    let v = Option.map (lower_expr env b) e_opt in
    Builder.set_term b (Ir.Ret v);
    (* unreachable continuation block for any trailing statements *)
    let dead = Builder.new_block b in
    Builder.switch_to b dead
  | Ast.Expr e -> (
    match e.Ast.edesc with
    | Ast.Call (name, args) ->
      ignore (lower_call env b ~name ~args ~want_value:false)
    | _ -> ignore (lower_expr env b e))
  | Ast.Block body ->
    push_scope env;
    lower_body env b body;
    pop_scope env

and lower_body env b stmts =
  push_scope env;
  List.iter (lower_stmt env b) stmts;
  pop_scope env

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let lower_func env (f : Ast.func) : Prog.func =
  let params = List.map (fun (ty, _) -> ir_ty_of_ast ty) f.Ast.fparams in
  let ret = match f.Ast.fret with Ast.Tvoid -> None | t -> Some (ir_ty_of_ast t) in
  let irf = Prog.create_func ~name:f.Ast.fname ~params ~ret in
  let b = Builder.create irf in
  push_scope env;
  List.iter2
    (fun (ty, name) (r, _) -> bind env name (Breg (r, ir_ty_of_ast ty)))
    f.Ast.fparams irf.Prog.params;
  lower_body env b f.Ast.fbody;
  (* implicit return for fall-through *)
  (match (b.Builder.sealed, ret) with
  | (true, _) -> ()
  | (false, None) -> Builder.set_term b (Ir.Ret None)
  | (false, Some Ir.I) -> Builder.set_term b (Ir.Ret (Some (Ir.Imm (Ir.Cint 0))))
  | (false, Some Ir.F) ->
    Builder.set_term b (Ir.Ret (Some (Ir.Imm (Ir.Cfloat 0.0)))));
  pop_scope env;
  irf

(** Lower a full (type-checked) program. *)
let lower_program (p : Ast.program) : Prog.t =
  let globals =
    List.map
      (fun (g : Ast.global) ->
        match g.Ast.gty with
        | Ast.Tarray (elem, n) ->
          { Prog.gsym = g.Ast.gname; gty = ir_ty_of_ast elem; gsize = n;
            ginit = g.Ast.ginit }
        | ty ->
          { Prog.gsym = g.Ast.gname; gty = ir_ty_of_ast ty; gsize = 1;
            ginit = g.Ast.ginit })
      p.Ast.globals
  in
  let prog = Prog.create ~globals in
  let env =
    {
      prog_globals = Hashtbl.create 16;
      scopes = [];
      func_rets = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (g : Prog.global) ->
      Hashtbl.replace env.prog_globals g.Prog.gsym
        (Barr
           ( { Ir.sym_name = g.Prog.gsym; sym_space = Ir.Shared },
             g.Prog.gty, g.Prog.gsize )))
    globals;
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.replace env.func_rets f.Ast.fname
        (match f.Ast.fret with
        | Ast.Tvoid -> None
        | t -> Some (ir_ty_of_ast t)))
    p.Ast.funcs;
  List.iter (fun f -> Prog.add_func prog (lower_func env f)) p.Ast.funcs;
  prog
