(** Runtime values and arithmetic of the simulated cores.

    Integers follow 32-bit two's-complement semantics (the target is an
    embedded 32-bit machine), with C-style truncating division.  Floats
    use the host double precision, standing in for the target's single
    precision — acceptable because no experiment depends on rounding. *)

module Ir = Lp_ir.Ir

type t = Vint of int | Vfloat of float

exception Runtime_error of string

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(** Wrap to signed 32-bit. *)
let[@inline always] wrap32 n = Lp_util.Int32_sem.wrap32 n

let[@inline always] to_int = function
  | Vint n -> n
  | Vfloat _ -> err "expected int value, got float"

let[@inline always] to_float = function
  | Vfloat f -> f
  | Vint _ -> err "expected float value, got int"

let of_const = function
  | Ir.Cint n -> Vint (wrap32 n)
  | Ir.Cfloat f -> Vfloat f

let[@inline always] is_true = function Vint 0 -> false | Vint _ -> true | Vfloat _ -> err "float condition"

let b2i b = Vint (if b then 1 else 0)

let binop (op : Ir.binop) (a : t) (b : t) : t =
  match op with
  | Ir.Add -> Vint (wrap32 (to_int a + to_int b))
  | Ir.Sub -> Vint (wrap32 (to_int a - to_int b))
  | Ir.Mul -> Vint (wrap32 (to_int a * to_int b))
  | Ir.Div ->
    let d = to_int b in
    if d = 0 then err "integer division by zero";
    Vint (wrap32 (to_int a / d))
  | Ir.Mod ->
    let d = to_int b in
    if d = 0 then err "integer modulo by zero";
    Vint (wrap32 (to_int a mod d))
  | Ir.Shl -> Vint (wrap32 (to_int a lsl (to_int b land 31)))
  | Ir.Shr -> Vint (wrap32 (to_int a asr (to_int b land 31)))
  | Ir.And -> Vint (wrap32 (to_int a land to_int b))
  | Ir.Or -> Vint (wrap32 (to_int a lor to_int b))
  | Ir.Xor -> Vint (wrap32 (to_int a lxor to_int b))
  | Ir.Lt -> b2i (to_int a < to_int b)
  | Ir.Le -> b2i (to_int a <= to_int b)
  | Ir.Gt -> b2i (to_int a > to_int b)
  | Ir.Ge -> b2i (to_int a >= to_int b)
  | Ir.Eq -> b2i (to_int a = to_int b)
  | Ir.Ne -> b2i (to_int a <> to_int b)
  | Ir.Fadd -> Vfloat (to_float a +. to_float b)
  | Ir.Fsub -> Vfloat (to_float a -. to_float b)
  | Ir.Fmul -> Vfloat (to_float a *. to_float b)
  | Ir.Fdiv -> Vfloat (to_float a /. to_float b)
  | Ir.Flt -> b2i (to_float a < to_float b)
  | Ir.Fle -> b2i (to_float a <= to_float b)
  | Ir.Fgt -> b2i (to_float a > to_float b)
  | Ir.Fge -> b2i (to_float a >= to_float b)
  | Ir.Feq -> b2i (to_float a = to_float b)
  | Ir.Fne -> b2i (to_float a <> to_float b)

(* Hot-path variants for the closure-compiled simulator: the match on
   the opcode happens once, when the block is compiled, instead of on
   every executed instruction.  Each returned closure performs exactly
   the computation of the corresponding {!binop}/{!unop} arm; boolean
   results reuse two preallocated cells (values are immutable, so
   sharing is unobservable). *)

let vtrue = Vint 1
let vfalse = Vint 0
let[@inline always] b2i' b = if b then vtrue else vfalse

(* The frequent opcodes as named monomorphic functions, so the
   closure-compiled simulator can reference them in a per-op match and
   get a direct, inlinable call — an unknown-closure application per
   executed instruction goes through the generic-apply stub, which is
   measurable at these instruction rates.  [binop_fn] reuses them, so
   the semantics exist in exactly one place. *)
let[@inline always] v_add a b = Vint (wrap32 (to_int a + to_int b))
let[@inline always] v_sub a b = Vint (wrap32 (to_int a - to_int b))
let[@inline always] v_mul a b = Vint (wrap32 (to_int a * to_int b))
let[@inline always] v_lt a b = b2i' (to_int a < to_int b)
let[@inline always] v_le a b = b2i' (to_int a <= to_int b)
let[@inline always] v_gt a b = b2i' (to_int a > to_int b)
let[@inline always] v_ge a b = b2i' (to_int a >= to_int b)
let[@inline always] v_eq a b = b2i' (to_int a = to_int b)
let[@inline always] v_ne a b = b2i' (to_int a <> to_int b)
let[@inline always] v_fadd a b = Vfloat (to_float a +. to_float b)
let[@inline always] v_fsub a b = Vfloat (to_float a -. to_float b)
let[@inline always] v_fmul a b = Vfloat (to_float a *. to_float b)

let binop_fn (op : Ir.binop) : t -> t -> t =
  match op with
  | Ir.Add -> v_add
  | Ir.Sub -> v_sub
  | Ir.Mul -> v_mul
  | Ir.Div ->
    fun a b ->
      let d = to_int b in
      if d = 0 then err "integer division by zero";
      Vint (wrap32 (to_int a / d))
  | Ir.Mod ->
    fun a b ->
      let d = to_int b in
      if d = 0 then err "integer modulo by zero";
      Vint (wrap32 (to_int a mod d))
  | Ir.Shl -> fun a b -> Vint (wrap32 (to_int a lsl (to_int b land 31)))
  | Ir.Shr -> fun a b -> Vint (wrap32 (to_int a asr (to_int b land 31)))
  | Ir.And -> fun a b -> Vint (wrap32 (to_int a land to_int b))
  | Ir.Or -> fun a b -> Vint (wrap32 (to_int a lor to_int b))
  | Ir.Xor -> fun a b -> Vint (wrap32 (to_int a lxor to_int b))
  | Ir.Lt -> v_lt
  | Ir.Le -> v_le
  | Ir.Gt -> v_gt
  | Ir.Ge -> v_ge
  | Ir.Eq -> v_eq
  | Ir.Ne -> v_ne
  | Ir.Fadd -> v_fadd
  | Ir.Fsub -> v_fsub
  | Ir.Fmul -> v_fmul
  | Ir.Fdiv -> fun a b -> Vfloat (to_float a /. to_float b)
  | Ir.Flt -> fun a b -> b2i' (to_float a < to_float b)
  | Ir.Fle -> fun a b -> b2i' (to_float a <= to_float b)
  | Ir.Fgt -> fun a b -> b2i' (to_float a > to_float b)
  | Ir.Fge -> fun a b -> b2i' (to_float a >= to_float b)
  | Ir.Feq -> fun a b -> b2i' (to_float a = to_float b)
  | Ir.Fne -> fun a b -> b2i' (to_float a <> to_float b)

let unop_fn (op : Ir.unop) : t -> t =
  match op with
  | Ir.Neg -> fun a -> Vint (wrap32 (-to_int a))
  | Ir.Not -> fun a -> b2i' (to_int a = 0)
  | Ir.Bnot -> fun a -> Vint (wrap32 (lnot (to_int a)))
  | Ir.Fneg -> fun a -> Vfloat (-.to_float a)
  | Ir.I2f -> fun a -> Vfloat (float_of_int (to_int a))
  | Ir.F2i -> fun a -> Vint (wrap32 (int_of_float (to_float a)))

let unop (op : Ir.unop) (a : t) : t =
  match op with
  | Ir.Neg -> Vint (wrap32 (-to_int a))
  | Ir.Not -> b2i (to_int a = 0)
  | Ir.Bnot -> Vint (wrap32 (lnot (to_int a)))
  | Ir.Fneg -> Vfloat (-.to_float a)
  | Ir.I2f -> Vfloat (float_of_int (to_int a))
  | Ir.F2i -> Vint (wrap32 (int_of_float (to_float a)))

(** d = a + b * c: integer MAC on the MAC unit. *)
let[@inline always] mac a b c = Vint (wrap32 (to_int a + wrap32 (to_int b * to_int c)))

let zero_of_ty = function Ir.I -> Vint 0 | Ir.F -> Vfloat 0.0

let to_string = function
  | Vint n -> string_of_int n
  | Vfloat f -> Printf.sprintf "%g" f

let equal a b =
  match (a, b) with
  | (Vint x, Vint y) -> x = y
  | (Vfloat x, Vfloat y) -> x = y || (Float.is_nan x && Float.is_nan y)
  | (Vint _, Vfloat _) | (Vfloat _, Vint _) -> false
