(** Cycle/energy simulator for IR programs on an embedded multicore
    machine model.

    Each core interprets its entry function with a private call stack and
    local time line (nanoseconds).  Cores interact through blocking
    channels, barriers and shared memory; all shared traffic is serialised
    on one bus whose occupancy creates contention.  Power state is
    simulated faithfully: per-component power gating (gated components
    leak nothing; using a gated component triggers an implicit wakeup
    penalty and is counted as a compiler bug), and per-core DVFS (compute
    cycles stretch with frequency, while bus and shared-memory time is
    frequency-independent — which is what makes DVFS profitable on
    memory-bound regions). *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Component = Lp_power.Component
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point
module Energy_ledger = Lp_power.Energy_ledger
module Machine = Lp_machine.Machine

exception Deadlock of string
exception Step_limit_exceeded

type frame = {
  func : Prog.func;
  regs : Value.t array;
  fmem : (string, Value.t array) Hashtbl.t;
  mutable block : Ir.label;
  mutable idx : int;
  mutable pending_dst : Ir.reg option;
  mutable cached_bid : Ir.label;          (** instruction-array cache *)
  mutable cached_instrs : Ir.instr array;
}

type status =
  | Ready
  | Blocked_send of int * Value.t
  | Blocked_recv of int * Ir.reg * Ir.ty
  | Blocked_barrier of int
  | Halted of Value.t option

type core = {
  id : int;
  mutable stack : frame list;
  mutable status : status;
  mutable time : float;
  mutable point : Operating_point.t;
  powered : bool array;
  ledger : Energy_ledger.t;
  mutable leak_mw : float;
  mutable instr_count : int;
  mutable implicit_wakeups : int;
  mutable gate_transitions : int;
  mutable dvfs_transitions : int;
  mutable busy_ns : float;
  mutable send_blocks : int;
  mutable recv_blocks : int;
  mutable cycles : int;       (** compute cycles issued (pre-DVFS-stretch) *)
  mutable bus_txns : int;     (** shared-bus transactions *)
  mutable bus_words : int;    (** words moved over the shared bus *)
  mutable bus_wait_ns : float;  (** time spent waiting for a busy bus *)
}

type chan = {
  cap : int;
  queue : (Value.t * float) Queue.t;  (** value, ready time *)
  waiting_senders : int Queue.t;      (** core ids blocked on full queue *)
  mutable total_msgs : int;
  mutable last_pop : float;  (** when a queue slot last freed; a blocked
                                 sender waits (idle) until then *)
}

type barrier_state = { mutable arrived : (int * float) list }

type options = {
  max_steps : int;
  gate_unused_cores : bool;
      (** model the compiler gating every gateable component of cores the
          program does not occupy *)
  trace_limit : int;
      (** record up to this many power/communication events (0 = off) *)
}

let default_options =
  { max_steps = 200_000_000; gate_unused_cores = false; trace_limit = 0 }

(** A recorded power/communication event: core id, nanosecond timestamp,
    human-readable description. *)
type event = { ev_core : int; ev_ns : float; ev_what : string }

(** A callee resolved once at simulator construction: the interpreter's
    call dispatch must not pay a by-name lookup plus [List.nth] parameter
    walks on every [Ir.Call]. *)
type fentry = {
  fe_func : Prog.func;
  fe_params : Ir.reg array;  (** parameter registers, in position order *)
}

type t = {
  prog : Prog.t;
  machine : Machine.t;
  opts : options;
  fsyms : (string, fentry) Hashtbl.t;  (** every function, by name *)
  cores : core array;          (** one per entry function *)
  shared : (string, Value.t array) Hashtbl.t;
  chans : chan array;
  barriers : barrier_state array;
  mutable bus_free : float;
  mutable steps : int;
  mutable trace : event list;  (** newest first; bounded by trace_limit *)
  mutable trace_len : int;
  faults_armed : bool;  (** sampled once at construction: keeps the
                            per-transaction bus hook off the hot path *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let recompute_leak t (c : core) =
  let pm = t.machine.Machine.power in
  let scale = Operating_point.leakage_scale ~nominal:(Power_model.nominal pm) c.point in
  let sum = ref 0.0 in
  List.iter
    (fun comp ->
      if c.powered.(Component.index comp) then
        sum := !sum +. (pm.Power_model.leak_power_mw comp *. scale))
    t.machine.Machine.components;
  c.leak_mw <- !sum

let make_frame (f : Prog.func) : frame =
  let nregs = Lp_util.Id_gen.peek f.Prog.reg_gen in
  let fmem = Hashtbl.create 4 in
  List.iter
    (fun (name, ty, len) ->
      Hashtbl.replace fmem name (Array.make len (Value.zero_of_ty ty)))
    f.Prog.frame_arrays;
  {
    func = f;
    regs = Array.make (max 1 nregs) (Value.Vint 0);
    fmem;
    block = f.Prog.entry;
    idx = 0;
    pending_dst = None;
    cached_bid = -1;
    cached_instrs = [||];
  }

let init_shared (prog : Prog.t) =
  let shared = Hashtbl.create 16 in
  List.iter
    (fun (g : Prog.global) ->
      let arr = Array.make g.Prog.gsize (Value.zero_of_ty g.Prog.gty) in
      (match g.Prog.ginit with
      | Some init ->
        List.iteri
          (fun i v ->
            if i < g.Prog.gsize then
              arr.(i) <-
                (match g.Prog.gty with
                | Ir.I -> Value.Vint (Value.wrap32 v)
                | Ir.F -> Value.Vfloat (float_of_int v)))
          init
      | None -> ());
      Hashtbl.replace shared g.Prog.gsym arr)
    prog.Prog.globals;
  shared

let create ?(opts = default_options) ~(machine : Machine.t) (prog : Prog.t) : t =
  let entries = Prog.entries prog in
  if List.length entries > machine.Machine.n_cores then
    invalid_arg
      (Printf.sprintf "Sim.create: program needs %d cores, machine has %d"
         (List.length entries) machine.Machine.n_cores);
  let pm = machine.Machine.power in
  let nominal = Power_model.nominal pm in
  let cores =
    Array.of_list
      (List.mapi
         (fun id entry ->
           let f = Prog.func_exn prog entry in
           {
             id;
             stack = [ make_frame f ];
             status = Ready;
             time = 0.0;
             point = nominal;
             powered = Array.make Component.count true;
             ledger = Energy_ledger.create ();
             leak_mw = 0.0;
             instr_count = 0;
             implicit_wakeups = 0;
             gate_transitions = 0;
             dvfs_transitions = 0;
             busy_ns = 0.0;
             send_blocks = 0;
             recv_blocks = 0;
             cycles = 0;
             bus_txns = 0;
             bus_words = 0;
             bus_wait_ns = 0.0;
           })
         entries)
  in
  let (n_channels, n_barriers, cap) =
    match prog.Prog.layout with
    | Prog.Sequential -> (0, 0, 0)
    | Prog.Parallel { n_channels; n_barriers; chan_capacity; _ } ->
      (n_channels, n_barriers, chan_capacity)
  in
  let fsyms = Hashtbl.create 16 in
  List.iter
    (fun (f : Prog.func) ->
      Hashtbl.replace fsyms f.Prog.fname
        {
          fe_func = f;
          fe_params = Array.of_list (List.map fst f.Prog.params);
        })
    (Prog.funcs prog);
  let t =
    {
      prog;
      machine;
      opts;
      fsyms;
      cores;
      shared = init_shared prog;
      chans =
        Array.init n_channels (fun _ ->
            { cap; queue = Queue.create (); waiting_senders = Queue.create ();
              total_msgs = 0; last_pop = 0.0 });
      barriers = Array.init n_barriers (fun _ -> { arrived = [] });
      bus_free = 0.0;
      steps = 0;
      trace = [];
      trace_len = 0;
      faults_armed = Lp_util.Fault.active ();
    }
  in
  Array.iter (fun c -> recompute_leak t c) cores;
  t

(* ------------------------------------------------------------------ *)
(* Time & energy plumbing                                              *)
(* ------------------------------------------------------------------ *)

let record t (c : core) fmt =
  Format.kasprintf
    (fun what ->
      if t.trace_len < t.opts.trace_limit then begin
        t.trace <- { ev_core = c.id; ev_ns = c.time; ev_what = what } :: t.trace;
        t.trace_len <- t.trace_len + 1
      end)
    fmt

let cycle_ns (c : core) n = Operating_point.ns_of_cycles c.point n

let nominal_ns t n =
  Operating_point.ns_of_cycles (Power_model.nominal t.machine.Machine.power) n

(** Advance a core's clock, charging leakage of powered components. *)
let advance t (c : core) dt ~idle =
  if dt > 0.0 then begin
    let cat =
      if idle then Energy_ledger.Leakage_idle else Energy_ledger.Leakage_active
    in
    Energy_ledger.charge c.ledger ~category:cat (c.leak_mw *. dt *. 1e-3);
    c.time <- c.time +. dt;
    if not idle then c.busy_ns <- c.busy_ns +. dt
  end;
  ignore t

(** Bring a blocked core forward to absolute time [target] (idle). *)
let resume_at t (c : core) target =
  if target > c.time then advance t c (target -. c.time) ~idle:true

(** Issue [n] compute cycles on [c]: advances its clock (stretched by the
    current operating point) and feeds the per-core cycle counter. *)
let spend t (c : core) n =
  c.cycles <- c.cycles + n;
  advance t c (cycle_ns c n) ~idle:false

let charge_dynamic t (c : core) comp =
  let pm = t.machine.Machine.power in
  Energy_ledger.charge c.ledger ~category:Energy_ledger.Dynamic ~component:comp
    (Power_model.dynamic_energy pm ~comp ~point:c.point ~ops:1)

(** Serialise a shared-bus transaction: the core waits for the bus, holds
    it for the transfer, then pays [extra_ns] (e.g. memory array access)
    off the bus. *)
let bus_access t (c : core) ~words ~extra_ns =
  (* armed only by fault-injection specs: a transient bus/memory fault *)
  if t.faults_armed then
    Lp_util.Fault.check Lp_util.Fault.Sim_bus ~key:"bus";
  let m = t.machine in
  let start = Float.max c.time t.bus_free in
  let bus_ns =
    nominal_ns t (m.Machine.bus_latency_cycles + (words * m.Machine.bus_word_cycles))
  in
  c.bus_txns <- c.bus_txns + 1;
  c.bus_words <- c.bus_words + words;
  c.bus_wait_ns <- c.bus_wait_ns +. (start -. c.time);
  t.bus_free <- start +. bus_ns;
  let finish = start +. bus_ns +. extra_ns in
  advance t c (finish -. c.time) ~idle:false;
  Energy_ledger.charge c.ledger ~category:Energy_ledger.Communication
    (float_of_int words *. m.Machine.bus_energy_per_word_nj)

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let runtime_err fmt = Format.kasprintf (fun s -> raise (Value.Runtime_error s)) fmt

let mem_array t (fr : frame) (s : Ir.sym) : Value.t array =
  match s.Ir.sym_space with
  | Ir.Shared | Ir.Rom -> (
    match Hashtbl.find_opt t.shared s.Ir.sym_name with
    | Some a -> a
    | None -> runtime_err "unknown global %s" s.Ir.sym_name)
  | Ir.Frame -> (
    match Hashtbl.find_opt fr.fmem s.Ir.sym_name with
    | Some a -> a
    | None -> runtime_err "unknown frame array %s" s.Ir.sym_name)

let mem_read t fr s idx =
  let a = mem_array t fr s in
  if idx < 0 || idx >= Array.length a then
    runtime_err "out-of-bounds read %s[%d] (len %d) in %s" (Ir.sym_to_string s)
      idx (Array.length a) fr.func.Prog.fname;
  a.(idx)

let mem_write t fr s idx v =
  let a = mem_array t fr s in
  if idx < 0 || idx >= Array.length a then
    runtime_err "out-of-bounds write %s[%d] (len %d) in %s" (Ir.sym_to_string s)
      idx (Array.length a) fr.func.Prog.fname;
  a.(idx) <- v

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

let eval (fr : frame) = function
  | Ir.Reg r -> fr.regs.(r)
  | Ir.Imm c -> Value.of_const c

let setr (fr : frame) r v = fr.regs.(r) <- v

(** Handle an instruction executing on a gated component: implicit wakeup
    with full penalty.  Correct compiler output never triggers this. *)
let ensure_powered t (c : core) comp =
  let i = Component.index comp in
  if not c.powered.(i) then begin
    let pm = t.machine.Machine.power in
    c.powered.(i) <- true;
    recompute_leak t c;
    c.implicit_wakeups <- c.implicit_wakeups + 1;
    record t c "IMPLICIT WAKEUP of %s" (Component.to_string comp);
    c.gate_transitions <- c.gate_transitions + 1;
    Energy_ledger.charge c.ledger ~category:Energy_ledger.Gating_overhead
      pm.Power_model.gate_energy_nj;
    spend t c pm.Power_model.wake_latency_cycles
  end

(* channels ride dedicated core-to-core mailbox links (as on PAC-style
   MPSoCs), so transfers pay a fixed link latency without occupying the
   shared bus *)
let complete_send t (sender : core) chan_id v =
  let ch = t.chans.(chan_id) in
  let m = t.machine in
  let link_ns =
    nominal_ns t (m.Machine.bus_latency_cycles + m.Machine.bus_word_cycles)
  in
  advance t sender link_ns ~idle:false;
  Energy_ledger.charge sender.ledger ~category:Energy_ledger.Communication
    m.Machine.bus_energy_per_word_nj;
  Queue.push (v, sender.time) ch.queue;
  ch.total_msgs <- ch.total_msgs + 1

let barrier_participants t = Array.length t.cores

let release_barrier t bid =
  let b = t.barriers.(bid) in
  if List.length b.arrived = barrier_participants t then begin
    let tmax =
      List.fold_left (fun acc (_, tm) -> Float.max acc tm) 0.0 b.arrived
    in
    let release = tmax +. nominal_ns t t.machine.Machine.bus_latency_cycles in
    List.iter
      (fun (cid, _) ->
        let c = t.cores.(cid) in
        resume_at t c release;
        c.status <- Ready)
      b.arrived;
    b.arrived <- []
  end

(** Execute the terminator of the current block. *)
let exec_term t (c : core) (fr : frame) (term : Ir.term) =
  spend t c 1;
  charge_dynamic t c Component.Branch_unit;
  match term with
  | Ir.Jmp l ->
    fr.block <- l;
    fr.idx <- 0
  | Ir.Br (cond, l1, l2) ->
    fr.block <- (if Value.is_true (eval fr cond) then l1 else l2);
    fr.idx <- 0
  | Ir.Ret v_opt -> (
    let v = Option.map (eval fr) v_opt in
    match c.stack with
    | [] -> runtime_err "return with empty stack"
    | _ :: [] ->
      record t c "halt%s"
        (match v with
        | Some value -> " -> " ^ Value.to_string value
        | None -> "");
      c.status <- Halted v
    | _ :: (caller :: _ as rest) ->
      c.stack <- rest;
      (match (caller.pending_dst, v) with
      | (Some d, Some value) -> setr caller d value
      | (Some _, None) -> runtime_err "void return into a register"
      | (None, _) -> ());
      caller.pending_dst <- None)

let exec_instr t (c : core) (fr : frame) (i : Ir.instr) =
  let comp = Ir.component_of i in
  ensure_powered t c comp;
  let pm = t.machine.Machine.power in
  let simple_cost () =
    spend t c (Ir.base_latency i);
    charge_dynamic t c comp
  in
  (match i.Ir.idesc with
  | Ir.Const (d, cst) ->
    simple_cost ();
    setr fr d (Value.of_const cst)
  | Ir.Move (d, a) ->
    simple_cost ();
    setr fr d (eval fr a)
  | Ir.Binop (op, d, a, b) ->
    simple_cost ();
    setr fr d (Value.binop op (eval fr a) (eval fr b))
  | Ir.Unop (op, d, a) ->
    simple_cost ();
    setr fr d (Value.unop op (eval fr a))
  | Ir.Mac (d, a, b, cc) ->
    simple_cost ();
    setr fr d (Value.mac (eval fr a) (eval fr b) (eval fr cc))
  | Ir.Load (d, s, idx) -> (
    let idx = Value.to_int (eval fr idx) in
    match s.Ir.sym_space with
    | Ir.Shared ->
      spend t c 1;
      charge_dynamic t c comp;
      bus_access t c ~words:1
        ~extra_ns:(nominal_ns t t.machine.Machine.shared_mem_latency_cycles);
      setr fr d (mem_read t fr s idx)
    | Ir.Rom | Ir.Frame ->
      spend t c (1 + t.machine.Machine.spm_latency_cycles);
      charge_dynamic t c comp;
      setr fr d (mem_read t fr s idx))
  | Ir.Store (s, idx, v) -> (
    let idx = Value.to_int (eval fr idx) in
    let v = eval fr v in
    match s.Ir.sym_space with
    | Ir.Shared ->
      spend t c 1;
      charge_dynamic t c comp;
      bus_access t c ~words:1
        ~extra_ns:(nominal_ns t t.machine.Machine.shared_mem_latency_cycles);
      mem_write t fr s idx v
    | Ir.Rom | Ir.Frame ->
      spend t c (1 + t.machine.Machine.spm_latency_cycles);
      charge_dynamic t c comp;
      mem_write t fr s idx v)
  | Ir.Faa (d, s, amount) ->
    let amount = Value.to_int (eval fr amount) in
    spend t c 2;
    charge_dynamic t c comp;
    bus_access t c ~words:1
      ~extra_ns:(nominal_ns t t.machine.Machine.shared_mem_latency_cycles);
    let old = Value.to_int (mem_read t fr s 0) in
    mem_write t fr s 0 (Value.Vint (Value.wrap32 (old + amount)));
    setr fr d (Value.Vint old)
  | Ir.Call (dst, callee, args) -> (
    simple_cost ();
    match Hashtbl.find_opt t.fsyms callee with
    | None -> runtime_err "call to unknown function %s" callee
    | Some fe ->
      let new_fr = make_frame fe.fe_func in
      let nparams = Array.length fe.fe_params in
      let bound =
        List.fold_left
          (fun k arg ->
            if k >= nparams then runtime_err "too many arguments to %s" callee;
            new_fr.regs.(fe.fe_params.(k)) <- eval fr arg;
            k + 1)
          0 args
      in
      if bound <> nparams then runtime_err "arity mismatch calling %s" callee;
      fr.pending_dst <- dst;
      c.stack <- new_fr :: c.stack)
  | Ir.Pg_off comps ->
    spend t c 1;
    record t c "pg_off %s" (Component.Set.to_string comps);
    Component.Set.iter
      (fun comp ->
        let k = Component.index comp in
        if c.powered.(k) then begin
          c.powered.(k) <- false;
          c.gate_transitions <- c.gate_transitions + 1;
          Energy_ledger.charge c.ledger ~category:Energy_ledger.Gating_overhead
            pm.Power_model.gate_energy_nj
        end)
      comps;
    recompute_leak t c
  | Ir.Pg_on comps ->
    record t c "pg_on %s" (Component.Set.to_string comps);
    let any = ref false in
    Component.Set.iter
      (fun comp ->
        let k = Component.index comp in
        if not c.powered.(k) then begin
          c.powered.(k) <- true;
          any := true;
          c.gate_transitions <- c.gate_transitions + 1;
          Energy_ledger.charge c.ledger ~category:Energy_ledger.Gating_overhead
            pm.Power_model.gate_energy_nj
        end)
      comps;
    recompute_leak t c;
    (* components wake in parallel: one wake latency *)
    let stall = if !any then pm.Power_model.wake_latency_cycles else 0 in
    spend t c (1 + stall)
  | Ir.Dvfs level ->
    let target = Power_model.point pm level in
    if target.Operating_point.level <> c.point.Operating_point.level then begin
      spend t c pm.Power_model.dvfs_latency_cycles;
      Energy_ledger.charge c.ledger ~category:Energy_ledger.Dvfs_overhead
        pm.Power_model.dvfs_energy_nj;
      c.point <- target;
      c.dvfs_transitions <- c.dvfs_transitions + 1;
      record t c "dvfs -> %s" (Operating_point.to_string target);
      recompute_leak t c
    end
    else spend t c 1
  | Ir.Send (chan_id, v) ->
    spend t c t.machine.Machine.channel_setup_cycles;
    charge_dynamic t c comp;
    let v = eval fr v in
    let ch = t.chans.(chan_id) in
    if Queue.length ch.queue >= ch.cap then begin
      c.send_blocks <- c.send_blocks + 1;
      record t c "blocked sending on ch%d" chan_id;
      Queue.push c.id ch.waiting_senders;
      c.status <- Blocked_send (chan_id, v)
    end
    else complete_send t c chan_id v
  | Ir.Recv (d, chan_id, ty) ->
    spend t c t.machine.Machine.channel_setup_cycles;
    charge_dynamic t c comp;
    let ch = t.chans.(chan_id) in
    if Queue.is_empty ch.queue then begin
      c.recv_blocks <- c.recv_blocks + 1;
      record t c "blocked receiving on ch%d" chan_id;
      c.status <- Blocked_recv (chan_id, d, ty)
    end
    else begin
      let (v, ready) = Queue.pop ch.queue in
      resume_at t c ready;
      ch.last_pop <- Float.max ch.last_pop c.time;
      (match (ty, v) with
      | (Ir.I, Value.Vint _) | (Ir.F, Value.Vfloat _) -> ()
      | _ -> runtime_err "channel %d type mismatch" chan_id);
      setr fr d v
    end
  | Ir.Barrier bid ->
    spend t c 1;
    charge_dynamic t c comp;
    let b = t.barriers.(bid) in
    record t c "arrived at barrier %d" bid;
    b.arrived <- (c.id, c.time) :: b.arrived;
    c.status <- Blocked_barrier bid;
    release_barrier t bid);
  c.instr_count <- c.instr_count + 1

(** Execute one step (instruction or terminator) on a ready core. *)
let step_core t (c : core) =
  match c.stack with
  | [] -> runtime_err "core %d has empty stack" c.id
  | fr :: _ ->
    let b = Prog.block fr.func fr.block in
    if fr.cached_bid <> fr.block then begin
      fr.cached_bid <- fr.block;
      fr.cached_instrs <- Array.of_list b.Ir.instrs
    end;
    if fr.idx < Array.length fr.cached_instrs then begin
      let i = fr.cached_instrs.(fr.idx) in
      fr.idx <- fr.idx + 1;
      exec_instr t c fr i
    end
    else exec_term t c fr b.Ir.term

(* ------------------------------------------------------------------ *)
(* Scheduler loop                                                      *)
(* ------------------------------------------------------------------ *)

(** Try to unblock blocked cores; true if any progress was made. *)
let unblock_pass t : bool =
  let progress = ref false in
  Array.iter
    (fun c ->
      match c.status with
      | Blocked_recv (chan_id, d, ty) ->
        let ch = t.chans.(chan_id) in
        if not (Queue.is_empty ch.queue) then begin
          let (v, ready) = Queue.pop ch.queue in
          resume_at t c ready;
          ch.last_pop <- Float.max ch.last_pop c.time;
          (match (ty, v) with
          | (Ir.I, Value.Vint _) | (Ir.F, Value.Vfloat _) -> ()
          | _ -> runtime_err "channel %d type mismatch" chan_id);
          (match c.stack with
          | fr :: _ -> setr fr d v
          | [] -> runtime_err "blocked core with empty stack");
          c.status <- Ready;
          progress := true;
          (* a slot freed: complete one waiting sender, FIFO *)
          if not (Queue.is_empty ch.waiting_senders) then begin
            let sid = Queue.pop ch.waiting_senders in
            let s = t.cores.(sid) in
            match s.status with
            | Blocked_send (cid, sv) when cid = chan_id ->
              resume_at t s ch.last_pop;
              complete_send t s chan_id sv;
              s.status <- Ready
            | _ -> runtime_err "inconsistent sender queue on channel %d" chan_id
          end
        end
      | Blocked_send (chan_id, v) ->
        let ch = t.chans.(chan_id) in
        (* possible when capacity grew available without a blocked recv *)
        if Queue.length ch.queue < ch.cap
           && (not (Queue.is_empty ch.waiting_senders))
           && Queue.peek ch.waiting_senders = c.id then begin
          ignore (Queue.pop ch.waiting_senders);
          resume_at t c ch.last_pop;
          complete_send t c chan_id v;
          c.status <- Ready;
          progress := true
        end
      | Ready | Blocked_barrier _ | Halted _ -> ())
    t.cores;
  !progress

let all_halted t =
  Array.for_all (fun c -> match c.status with Halted _ -> true | _ -> false) t.cores

let describe_blocked t =
  let parts =
    Array.to_list
      (Array.map
         (fun c ->
           let s =
             match c.status with
             | Ready -> "ready"
             | Blocked_send (ch, _) -> Printf.sprintf "send(ch%d)" ch
             | Blocked_recv (ch, _, _) -> Printf.sprintf "recv(ch%d)" ch
             | Blocked_barrier b -> Printf.sprintf "barrier(%d)" b
             | Halted _ -> "halted"
           in
           Printf.sprintf "core%d:%s" c.id s)
         t.cores)
  in
  String.concat " " parts

let run_loop t =
  let continue_ = ref true in
  while !continue_ do
    if all_halted t then continue_ := false
    else begin
      (* unblock eagerly so that cores advance in (approximately) global
         virtual-time order — required for the shared-bus occupancy model
         to see transactions near-chronologically *)
      ignore (unblock_pass t);
      (* pick the ready core with the smallest local time *)
      let best = ref None in
      Array.iter
        (fun c ->
          match c.status with
          | Ready -> (
            match !best with
            | Some b when b.time <= c.time -> ()
            | _ -> best := Some c)
          | _ -> ())
        t.cores;
      match !best with
      | Some c ->
        t.steps <- t.steps + 1;
        if t.steps > t.opts.max_steps then raise Step_limit_exceeded;
        step_core t c
      | None ->
        if not (unblock_pass t) then
          raise (Deadlock ("no runnable core: " ^ describe_blocked t))
    end
  done

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  ret : Value.t option;             (** return value of core 0 *)
  duration_ns : float;
  energy : Energy_ledger.t;         (** machine-wide, merged *)
  core_ledgers : Energy_ledger.t array;
  shared_final : (string, Value.t array) Hashtbl.t;
  instr_total : int;
  implicit_wakeups : int;
  gate_transitions : int;
  dvfs_transitions : int;
  busy_ns : float array;
  instrs_per_core : int array;
  send_blocks : int array;
  recv_blocks : int array;
  cycles_per_core : int array;   (** compute cycles issued per core *)
  bus_txns_per_core : int array; (** shared-bus transactions per core *)
  bus_words_per_core : int array;
  bus_wait_ns_per_core : float array;  (** contention: time waiting for the bus *)
  channel_msgs : int;
  steps : int;
  events : event list;  (** oldest first; bounded by [options.trace_limit] *)
}

(** Charge leakage of machine cores not used by the program, for the whole
    run duration. *)
let charge_unused_cores t ~duration =
  let used = Array.length t.cores in
  let m = t.machine in
  let pm = m.Machine.power in
  let ledgers = ref [] in
  for _ = used to m.Machine.n_cores - 1 do
    let ledger = Energy_ledger.create () in
    List.iter
      (fun comp ->
        let gated = t.opts.gate_unused_cores && Component.gateable comp in
        if not gated then
          Energy_ledger.charge ledger ~category:Energy_ledger.Leakage_idle
            ~component:comp
            (pm.Power_model.leak_power_mw comp *. duration *. 1e-3))
      m.Machine.components;
    if t.opts.gate_unused_cores then
      (* the initial gating transitions of that core *)
      List.iter
        (fun comp ->
          if Component.gateable comp then
            Energy_ledger.charge ledger
              ~category:Energy_ledger.Gating_overhead
              pm.Power_model.gate_energy_nj)
        m.Machine.components;
    ledgers := ledger :: !ledgers
  done;
  List.rev !ledgers

module Obs = Lp_obs.Obs

(** Feed the recorder from a finished simulation: one simulated-time span
    per core (on {!Obs.sim_pid}, so chrome://tracing shows the machine's
    timeline next to the compiler's wall clock) and the per-core
    cycle/bus/instruction counters. *)
let observe_outcome obs t ~duration =
  if Obs.enabled obs then begin
    Array.iter
      (fun (c : core) ->
        Obs.emit_span obs ~cat:"sim-core" ~pid:Obs.sim_pid ~tid:c.id
          ~start_ns:0.0 ~dur_ns:c.time
          ~args:
            [
              ("instrs", Obs.Int c.instr_count);
              ("cycles", Obs.Int c.cycles);
              ("bus_txns", Obs.Int c.bus_txns);
              ("busy_ns", Obs.Float c.busy_ns);
            ]
          (Printf.sprintf "core%d" c.id);
        let ctr fmt = Printf.sprintf fmt c.id in
        Obs.add obs (ctr "sim.core%d.instrs") c.instr_count;
        Obs.add obs (ctr "sim.core%d.cycles") c.cycles;
        Obs.add obs (ctr "sim.core%d.bus_txns") c.bus_txns;
        Obs.add obs (ctr "sim.core%d.bus_words") c.bus_words)
      t.cores;
    Obs.add obs "sim.runs" 1;
    Obs.add obs "sim.steps" t.steps;
    Obs.add obs "sim.channel_msgs"
      (Array.fold_left (fun a ch -> a + ch.total_msgs) 0 t.chans);
    (* an implicit wakeup means an instruction executed on a component
       the compiler had gated off — always a compiler bug, so the count
       is surfaced as a counter even when zero *)
    Obs.add obs "sim.implicit_wakeups"
      (Array.fold_left (fun a (c : core) -> a + c.implicit_wakeups) 0 t.cores);
    Obs.set_gauge obs "sim.last_duration_ns" duration
  end

let run ?(opts = default_options) ?(obs = Obs.disabled) ~machine prog : outcome =
  Lp_util.Fault.check Lp_util.Fault.Pre_simulate ~key:"run";
  let t = create ~opts ~machine prog in
  Obs.span obs ~cat:"sim" "simulate" (fun () -> run_loop t);
  let duration =
    Array.fold_left (fun acc c -> Float.max acc c.time) 0.0 t.cores
  in
  (* cores that halted early leak (idle) until the machine finishes *)
  Array.iter
    (fun c -> if c.time < duration then resume_at t c duration)
    t.cores;
  let unused = charge_unused_cores t ~duration in
  observe_outcome obs t ~duration;
  let energy = Energy_ledger.create () in
  Array.iter (fun c -> Energy_ledger.merge_into ~dst:energy ~src:c.ledger) t.cores;
  List.iter (fun l -> Energy_ledger.merge_into ~dst:energy ~src:l) unused;
  let ret =
    match t.cores.(0).status with Halted v -> v | _ -> None
  in
  {
    ret;
    duration_ns = duration;
    energy;
    core_ledgers = Array.map (fun c -> c.ledger) t.cores;
    shared_final = t.shared;
    instr_total = Array.fold_left (fun a (c : core) -> a + c.instr_count) 0 t.cores;
    implicit_wakeups =
      Array.fold_left (fun a (c : core) -> a + c.implicit_wakeups) 0 t.cores;
    gate_transitions =
      Array.fold_left (fun a (c : core) -> a + c.gate_transitions) 0 t.cores;
    dvfs_transitions =
      Array.fold_left (fun a (c : core) -> a + c.dvfs_transitions) 0 t.cores;
    busy_ns = Array.map (fun (c : core) -> c.busy_ns) t.cores;
    instrs_per_core = Array.map (fun (c : core) -> c.instr_count) t.cores;
    send_blocks = Array.map (fun (c : core) -> c.send_blocks) t.cores;
    recv_blocks = Array.map (fun (c : core) -> c.recv_blocks) t.cores;
    cycles_per_core = Array.map (fun (c : core) -> c.cycles) t.cores;
    bus_txns_per_core = Array.map (fun (c : core) -> c.bus_txns) t.cores;
    bus_words_per_core = Array.map (fun (c : core) -> c.bus_words) t.cores;
    bus_wait_ns_per_core = Array.map (fun (c : core) -> c.bus_wait_ns) t.cores;
    channel_msgs = Array.fold_left (fun a ch -> a + ch.total_msgs) 0 t.chans;
    steps = t.steps;
    events = List.rev t.trace;
  }

(** Map the exceptions a simulation can raise onto structured
    diagnostics; [None] for exceptions the simulator does not own. *)
let diag_of_exn : exn -> Lp_util.Diag.t option =
  let module D = Lp_util.Diag in
  function
  | D.Error d -> Some d
  | Deadlock msg -> Some (D.make D.Simulate ~code:"E_DEADLOCK" msg)
  | Step_limit_exceeded ->
    Some (D.make D.Simulate ~code:"E_STEP_LIMIT" "simulation step limit exceeded")
  | Value.Runtime_error msg -> Some (D.make D.Simulate ~code:"E_RUNTIME" msg)
  | _ -> None

(** [run], but failures come back as structured diagnostics instead of
    escaping as exceptions. *)
let run_result ?opts ?obs ~machine prog : (outcome, Lp_util.Diag.t) result =
  match run ?opts ?obs ~machine prog with
  | o -> Ok o
  | exception e -> (
    match diag_of_exn e with Some d -> Error d | None -> raise e)

(** Read back a global cell after the run (for correctness checks). *)
let shared_cell (o : outcome) name idx =
  match Hashtbl.find_opt o.shared_final name with
  | Some a when idx >= 0 && idx < Array.length a -> Some a.(idx)
  | Some _ | None -> None

let shared_array (o : outcome) name = Hashtbl.find_opt o.shared_final name

(** Energy-delay product in nJ*ms — the metric of figure F2. *)
let edp (o : outcome) = Energy_ledger.total o.energy *. (o.duration_ns *. 1e-6)
