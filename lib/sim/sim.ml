(** Cycle/energy simulator for IR programs on an embedded multicore
    machine model.

    Each core interprets its entry function with a private call stack and
    local time line (nanoseconds).  Cores interact through blocking
    channels, barriers and shared memory; all shared traffic is serialised
    on one bus whose occupancy creates contention.  Power state is
    simulated faithfully: per-component power gating (gated components
    leak nothing; using a gated component triggers an implicit wakeup
    penalty and is counted as a compiler bug), and per-core DVFS (compute
    cycles stretch with frequency, while bus and shared-memory time is
    frequency-independent — which is what makes DVFS profitable on
    memory-bound regions).

    Two execution modes produce byte-identical results:

    - the default {e closure-compiled} mode pre-decodes every function
      (see {!Predecode}) and compiles each basic block once into an array
      of OCaml closures with operands, memory symbols, call targets and
      per-point energy/time factors resolved up front, so the steady-state
      loop is [closure.(idx) core frame] with no constructor dispatch and
      no hashing;
    - the {e interpretive} mode ([predecode = false], reachable through
      [LP_NO_SIM_PREDECODE=1] / [--no-sim-predecode]) keeps the original
      per-instruction match dispatch and serves as the reference the
      compiled mode is checked against.

    The compiled mode is fast because every remaining float operation is
    one the interpretive mode also performs, in the same order — the
    speedup comes from deleting lookups (hash tables, [**], divisions,
    list→array copies), never from reassociating float arithmetic, which
    is what makes byte-identical cycle/energy output possible. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Component = Lp_power.Component
module Power_model = Lp_power.Power_model
module Operating_point = Lp_power.Operating_point
module Energy_ledger = Lp_power.Energy_ledger
module Machine = Lp_machine.Machine

exception Deadlock of string
exception Step_limit_exceeded

type status =
  | Ready
  | Blocked_send of int * Value.t
  | Blocked_recv of int * Ir.reg * Ir.ty
  | Blocked_barrier of int
  | Halted of Value.t option

(** A callee resolved once at simulator construction: the interpreter's
    call dispatch must not pay a by-name lookup plus [List.nth] parameter
    walks on every [Ir.Call]. *)
type fentry = {
  fe_func : Prog.func;
  fe_params : Ir.reg array;  (** parameter registers, in position order *)
  fe_dfunc : Predecode.dfunc;
}

(** Hot per-core float state, segregated into an all-float record:
    OCaml stores such records flat (unboxed), so the per-instruction
    updates below ([time], [busy_ns]) write raw doubles instead of
    allocating a boxed float per store, as the same mutable fields
    would inside the mixed [core] record. *)
type core_clock = {
  mutable time : float;
  mutable busy_ns : float;
  mutable bus_wait_ns : float;   (** time spent waiting for a busy bus *)
  mutable leak_mw : float;
  mutable ns_per_cycle : float;  (** 1000 / f at the current point *)
}

type frame = {
  fcore : core;  (** owning core, so compiled closures are arity-1 *)
  func : Prog.func;
  dfunc : Predecode.dfunc;
  cfun : cfun;
  regs : Value.t array;
  fmem : (string, Value.t array) Hashtbl.t;
  farrs : Value.t array array;
      (** the same arrays as [fmem], in [Prog.frame_arrays] position
          order, for the compiled mode's index-resolved accesses *)
  mutable block : Ir.label;
  mutable idx : int;
  mutable pending_dst : Ir.reg option;
  mutable dbid : Ir.label;             (** interpretive block cache key *)
  mutable dblk : Predecode.dblock;
  mutable cblk : cblock;               (** compiled current block *)
}

(** One closure-compiled basic block. *)
and cblock = {
  cb_instrs : (frame -> unit) array;
  cb_n : int;
  cb_pure : int array;
      (** [cb_pure.(i)] = length of the maximal run of {e pure}
          instructions starting at [i] (0 when instruction [i] is not
          pure).  Pure = cannot change the core's status, fire a
          scheduling event, or push a frame — so the batch loop
          executes the whole run with no per-instruction checks (see
          {!run_sched_batch}) *)
  cb_term : frame -> unit;
}

(** A closure-compiled function.  [cf_blocks] is indexed by block label;
    created empty for every function first, then filled, so call targets
    and branch targets resolve across mutual recursion. *)
and cfun = {
  cf_fe : fentry;
  mutable cf_blocks : cblock array;  (** [||] when compilation is off *)
}

and core = {
  id : int;
  cls : int;                  (** index into [machine.classes] *)
  pm : Power_model.t;
      (** this core's class power model; every energy charge and ladder
          lookup goes through it, so a heterogeneous machine charges
          each core by its own class *)
  perf_scale : float;
      (** cycles this core needs per reference cycle (class perf scale);
          folded into [clk.ns_per_cycle] *)
  mutable stack : frame list;
  mutable status : status;
  clk : core_clock;
  mutable point : Operating_point.t;
  powered : bool array;
  ledger : Energy_ledger.t;
  (* raw accumulator cells of [ledger], hoisted so the per-instruction
     charges below are plain float-array read-modify-writes (see
     Energy_ledger.raw_by_category) *)
  lg_cat : float array;
  lg_comp : float array;
  lg_tot : float array;
  mutable leak_dirty : bool;
      (** compiled mode defers {!recompute_leak} to the next clock
          advance; the interpretive mode recomputes eagerly and never
          sets this *)
  dyn_row : float array;
      (** per-component dynamic energy at the current point (indexed by
          [Component.index]); refreshed on DVFS transitions *)
  mutable instr_count : int;
  mutable implicit_wakeups : int;
  mutable gate_transitions : int;
  mutable dvfs_transitions : int;
  mutable send_blocks : int;
  mutable recv_blocks : int;
  mutable cycles : int;       (** compute cycles issued (pre-DVFS-stretch) *)
  mutable bus_txns : int;     (** shared-bus transactions *)
  mutable bus_words : int;    (** words moved over the shared bus *)
  mutable local_accs : int;
      (** local-store accesses since the last modelled cache miss; only
          advanced on machines whose local store is a cache *)
  prof_on : bool;             (** sampled once from [options.profile] *)
  prof : Profile.tab;         (** per-core attribution table *)
  mutable prof_cur : Profile.slot;
      (** slot the next charge attributes to; the steppers point it at
          the executing instruction's (function, line) slot, and it
          keeps pointing at a blocking Send/Recv/Barrier while the core
          is blocked, so blocked-time leakage lands on the instruction
          that blocked *)
}

type chan = {
  cap : int;
  queue : (Value.t * float) Queue.t;  (** value, ready time *)
  waiting_senders : int Queue.t;      (** core ids blocked on full queue *)
  mutable total_msgs : int;
  mutable last_pop : float;  (** when a queue slot last freed; a blocked
                                 sender waits (idle) until then *)
}

type barrier_state = { mutable arrived : (int * float) list }

type options = {
  max_steps : int;
  gate_unused_cores : bool;
      (** model the compiler gating every gateable component of cores the
          program does not occupy *)
  trace_limit : int;
      (** record up to this many power/communication events (0 = off) *)
  predecode : bool;
      (** run closure-compiled blocks (default); [false] selects the
          interpretive reference stepper *)
  deadline : Lp_util.Deadline.t;
      (** cooperative wall-clock deadline checked once per scheduling
          decision; expiry raises the [E_DEADLINE] diagnostic.  Does not
          affect simulated state, so outcomes that finish in time are
          byte-identical with and without a deadline *)
  profile : bool;
      (** attribute every charged nanojoule to the source line that
          spent it (see {!Profile}).  A pure observer: cycles, ledgers
          and the outcome are byte-identical with profiling on or off *)
}

let default_options =
  {
    max_steps = 200_000_000;
    gate_unused_cores = false;
    trace_limit = 0;
    predecode = true;
    deadline = Lp_util.Deadline.none;
    profile = false;
  }

(** A recorded power/communication event: core id, nanosecond timestamp,
    human-readable description. *)
type event = { ev_core : int; ev_ns : float; ev_what : string }

type t = {
  prog : Prog.t;
  machine : Machine.t;
  opts : options;
  fsyms : (string, cfun) Hashtbl.t;  (** every function, by name *)
  dfuncs : (string, Predecode.dfunc) Hashtbl.t;
  decoded_blocks : int;   (** total blocks decoded (once, at creation) *)
  cores : core array;          (** one per entry function *)
  shared : (string, Value.t array) Hashtbl.t;
  chans : chan array;
  barriers : barrier_state array;
  bus_free : float array;
      (** one-element array, not a [mutable float] field: a float store
          into this mixed record would box on every bus transaction *)
  mutable steps : int;
  mutable trace : event list;  (** newest first; bounded by trace_limit *)
  mutable trace_len : int;
  mutable leak_recomputes : int;
  mutable sched_event : bool;
      (** set by anything that can change which cores are schedulable —
          a channel push/pop, a barrier release — since the last
          [unblock_pass]; while it stays clear, the compiled mode keeps
          stepping the picked core without rescanning (see
          {!run_sched_batch}) *)
  mutable batch_other : int;
      (** index of the runner-up core bounding the current batch, or
          -1; globally-visible instructions check their execution turn
          against it (see {!visible_turn}) *)
  mutable live_cores : int;
      (** cores not yet [Halted]; maintained at the two halt sites so
          the scheduler's are-we-done check is one integer compare
          instead of a status scan per iteration *)
  mutable frames_dirty : bool;
      (** set by a compiled [Call] when it pushes a frame: the batch
          loop's cached frame/block are stale and must be re-fetched
          (terminators are re-fetched unconditionally) *)
  mutable unblock_dirty : bool;
      (** set when the next {!unblock_pass} could possibly make
          progress: a core just blocked on a channel, or anything that
          sets [sched_event] happened.  While clear, the pass is a
          provable no-op (it only acts on blocked senders/receivers
          and on channel state, none of which changed) and the
          compiled scheduler skips it *)
  faults_armed : bool;  (** sampled once at construction: keeps the
                            per-transaction bus hook off the hot path *)
  (* Nominal-frequency constants, hoisted out of the per-access path.
     All are exactly the values the interpretive mode recomputes. *)
  bus_txn1_ns : float;       (** bus occupancy of a one-word transaction *)
  shared_extra_ns : float;   (** off-bus near-tier shared-memory access time *)
  bus_word_energy_nj : float;
  (* Tiered shared memory: symbols of at least [far_threshold_words]
     words live in the far tier on machines that have one.  The table is
     empty on near-only machines, so their access paths are unchanged. *)
  far_syms : (string, unit) Hashtbl.t;
  far_extra_ns : float;      (** off-bus far-tier access time *)
  far_energy_nj : float;     (** far tier per-access energy *)
  (* Cache local store (deterministic periodic miss model); a period of
     0 means the local store is a scratchpad and misses never happen. *)
  cache_miss_period : int;
  cache_miss_penalty : int;
  cache_miss_energy_nj : float;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let recompute_leak t (c : core) =
  t.leak_recomputes <- t.leak_recomputes + 1;
  let pm = c.pm in
  let scale = Operating_point.leakage_scale ~nominal:(Power_model.nominal pm) c.point in
  let sum = ref 0.0 in
  List.iter
    (fun comp ->
      if c.powered.(Component.index comp) then
        sum := !sum +. (pm.Power_model.leak_power_mw comp *. scale))
    t.machine.Machine.components;
  c.clk.leak_mw <- !sum;
  c.leak_dirty <- false

(** Refresh the per-core caches derived from the operating point.  The
    cached values are bit-identical to what the uncached code computes:
    [ns_of_cycles n] is [float_of_int n *. (1000 /. f)], the class perf
    scale multiplies in ([x *. 1.0] is bitwise [x], so cores of scale
    1.0 — every core of every pre-existing machine — are untouched),
    and [dynamic_energy ~ops:1] is [(1.0 *. e) *. scale = e *. scale]. *)
let refresh_point_caches _t (c : core) =
  c.clk.ns_per_cycle <-
    1000.0 /. c.point.Operating_point.freq_mhz *. c.perf_scale;
  let pm = c.pm in
  let scale =
    Operating_point.dynamic_scale ~nominal:(Power_model.nominal pm) c.point
  in
  List.iter
    (fun comp ->
      c.dyn_row.(Component.index comp) <-
        pm.Power_model.dyn_energy_nj comp *. scale)
    Component.all

let dummy_cblock =
  { cb_instrs = [||]; cb_n = 0; cb_pure = [||];
    cb_term = (fun _ -> assert false) }

let make_frame (fcore : core) (cf : cfun) : frame =
  let f = cf.cf_fe.fe_func in
  let nregs = Lp_util.Id_gen.peek f.Prog.reg_gen in
  let fmem = Hashtbl.create 4 in
  let farrs = Array.make (List.length f.Prog.frame_arrays) [||] in
  List.iteri
    (fun k (name, ty, len) ->
      let a = Array.make len (Value.zero_of_ty ty) in
      Hashtbl.replace fmem name a;
      farrs.(k) <- a)
    f.Prog.frame_arrays;
  let cblk =
    if Array.length cf.cf_blocks > 0 then cf.cf_blocks.(f.Prog.entry)
    else dummy_cblock
  in
  {
    fcore;
    func = f;
    dfunc = cf.cf_fe.fe_dfunc;
    cfun = cf;
    regs = Array.make (max 1 nregs) (Value.Vint 0);
    fmem;
    farrs;
    block = f.Prog.entry;
    idx = 0;
    pending_dst = None;
    dbid = -1;
    dblk = Predecode.dummy_block;
    cblk;
  }

(* Boxing the initial [Value.t] image of a program's globals dominates
   [create] for data-heavy programs (one allocation plus a write-barrier
   store per initialised element), and the image is a pure function of
   the program — so it is built once per program and block-copied per
   simulation.  Values are immutable, so sharing the boxes across
   simulations is invisible; the [Array.copy] keeps writes to [Shared]
   arrays run-local.  Single entry, keyed by physical equality: drivers
   (benchmarks, experiment sweeps) create many simulators of the same
   program in a row. *)
let shared_image_cache : (Prog.t * (string * Value.t array) list) option ref =
  ref None

let shared_image (prog : Prog.t) =
  match !shared_image_cache with
  | Some (p, img) when p == prog -> img
  | _ ->
    let img =
      List.map
        (fun (g : Prog.global) ->
          let arr = Array.make g.Prog.gsize (Value.zero_of_ty g.Prog.gty) in
          (match g.Prog.ginit with
          | Some init ->
            List.iteri
              (fun i v ->
                if i < g.Prog.gsize then
                  arr.(i) <-
                    (match g.Prog.gty with
                    | Ir.I -> Value.Vint (Value.wrap32 v)
                    | Ir.F -> Value.Vfloat (float_of_int v)))
              init
          | None -> ());
          (g.Prog.gsym, arr))
        prog.Prog.globals
    in
    shared_image_cache := Some (prog, img);
    img

let init_shared (prog : Prog.t) =
  let shared = Hashtbl.create 16 in
  List.iter
    (fun (sym, arr) -> Hashtbl.replace shared sym (Array.copy arr))
    (shared_image prog);
  shared

(* ------------------------------------------------------------------ *)
(* Time & energy plumbing                                              *)
(* ------------------------------------------------------------------ *)

let record t (c : core) fmt =
  Format.kasprintf
    (fun what ->
      if t.trace_len < t.opts.trace_limit then begin
        t.trace <- { ev_core = c.id; ev_ns = c.clk.time; ev_what = what } :: t.trace;
        t.trace_len <- t.trace_len + 1
      end)
    fmt

(** Trace hook for the compiled mode: the description string is only
    built when it will actually be kept, so tracing costs nothing when
    [trace_limit] is 0 (the overwhelmingly common case). *)
let record_thunk t (c : core) f =
  if t.trace_len < t.opts.trace_limit then begin
    t.trace <- { ev_core = c.id; ev_ns = c.clk.time; ev_what = f () } :: t.trace;
    t.trace_len <- t.trace_len + 1
  end

(* [Float.max] without the cross-module call (which boxes both floats
   and the result): simulation clocks are never NaN and never -0.0, so
   a plain comparison computes the identical value. *)
let[@inline always] fmax a b : float = if a >= b then a else b

(* via the ns-per-cycle cache so the class perf scale applies; on scale
   1.0 this is bitwise [Operating_point.ns_of_cycles c.point n] *)
let cycle_ns (c : core) n = float_of_int n *. c.clk.ns_per_cycle

(* the bus and shared memory tick at the machine's reference clock:
   nominal frequency of core class 0 *)
let nominal_ns t n =
  Operating_point.ns_of_cycles
    (Power_model.nominal (Machine.ref_power t.machine)) n

(** Advance a core's clock, charging leakage of powered components.  The
    compiled mode marks leakage dirty on power events instead of
    recomputing eagerly; the value is refreshed here, at the first
    advance that reads it — which is exactly when the eager recompute
    would first be observable. *)
let[@inline always] advance t (c : core) dt ~idle =
  if dt > 0.0 then begin
    if c.leak_dirty then recompute_leak t c;
    (* hand-inlined [Energy_ledger.charge ~category:Leakage_*]: same
       check, same accumulation order (category then total) *)
    let nj = c.clk.leak_mw *. dt *. 1e-3 in
    if nj < 0.0 then Energy_ledger.negative_energy ();
    (* unchecked: the accumulator arrays have fixed sizes (6 categories,
       1 total cell) and every index below is a constant or a
       [Component.index], in range by construction *)
    let lci = if idle then 2 else 1 in
    Array.unsafe_set c.lg_cat lci (Array.unsafe_get c.lg_cat lci +. nj);
    Array.unsafe_set c.lg_tot 0 (Array.unsafe_get c.lg_tot 0 +. nj);
    if c.prof_on then begin
      let sc = c.prof_cur.Profile.sl_cat in
      Array.unsafe_set sc lci (Array.unsafe_get sc lci +. nj)
    end;
    c.clk.time <- c.clk.time +. dt;
    if not idle then c.clk.busy_ns <- c.clk.busy_ns +. dt
  end

(** Bring a blocked core forward to absolute time [target] (idle). *)
let resume_at t (c : core) target =
  if target > c.clk.time then advance t c (target -. c.clk.time) ~idle:true

(** Issue [n] compute cycles on [c]: advances its clock (stretched by the
    current operating point) and feeds the per-core cycle counter. *)
let spend t (c : core) n =
  c.cycles <- c.cycles + n;
  if c.prof_on then
    c.prof_cur.Profile.sl_cycles <- c.prof_cur.Profile.sl_cycles + n;
  advance t c (cycle_ns c n) ~idle:false

let charge_dynamic _t (c : core) comp =
  let pm = c.pm in
  let nj = Power_model.dynamic_energy pm ~comp ~point:c.point ~ops:1 in
  Energy_ledger.charge c.ledger ~category:Energy_ledger.Dynamic ~component:comp
    nj;
  if c.prof_on then begin
    let sc = c.prof_cur.Profile.sl_cat in
    Array.unsafe_set sc 0 (Array.unsafe_get sc 0 +. nj)
  end

(** Serialise a shared-bus transaction: the core waits for the bus, holds
    it for the transfer, then pays [extra_ns] (e.g. memory array access)
    off the bus. *)
let bus_access t (c : core) ~words ~extra_ns =
  (* armed only by fault-injection specs: a transient bus/memory fault *)
  if t.faults_armed then
    Lp_util.Fault.check Lp_util.Fault.Sim_bus ~key:"bus";
  let m = t.machine in
  let start = fmax c.clk.time t.bus_free.(0) in
  let bus_ns =
    nominal_ns t (m.Machine.bus_latency_cycles + (words * m.Machine.bus_word_cycles))
  in
  c.bus_txns <- c.bus_txns + 1;
  c.bus_words <- c.bus_words + words;
  c.clk.bus_wait_ns <- c.clk.bus_wait_ns +. (start -. c.clk.time);
  let nj = float_of_int words *. m.Machine.bus_energy_per_word_nj in
  if c.prof_on then begin
    let s = c.prof_cur in
    s.Profile.sl_bus_txns <- s.Profile.sl_bus_txns + 1;
    s.Profile.sl_bus_words <- s.Profile.sl_bus_words + words;
    s.Profile.sl_bus_wait_ns <-
      s.Profile.sl_bus_wait_ns +. (start -. c.clk.time);
    let sc = s.Profile.sl_cat in
    Array.unsafe_set sc 5 (Array.unsafe_get sc 5 +. nj)
  end;
  t.bus_free.(0) <- start +. bus_ns;
  let finish = start +. bus_ns +. extra_ns in
  advance t c (finish -. c.clk.time) ~idle:false;
  Energy_ledger.charge c.ledger ~category:Energy_ledger.Communication nj

(** Interpretive-mode shared access: one bus transaction plus the
    latency of the tier the symbol lives in; a far-tier access also pays
    the tier's per-access energy (Communication).  [far_syms] is empty
    on near-only machines, so their path is exactly the old one. *)
let shared_access t (c : core) (s : Ir.sym) =
  if Hashtbl.mem t.far_syms s.Ir.sym_name then begin
    bus_access t c ~words:1 ~extra_ns:t.far_extra_ns;
    let nj = t.far_energy_nj in
    Energy_ledger.charge c.ledger ~category:Energy_ledger.Communication nj;
    if c.prof_on then begin
      let sc = c.prof_cur.Profile.sl_cat in
      Array.unsafe_set sc 5 (Array.unsafe_get sc 5 +. nj)
    end
  end
  else
    bus_access t c ~words:1
      ~extra_ns:(nominal_ns t (Machine.shared_mem_latency_cycles t.machine))

(** Deterministic periodic miss model for cache local stores: every
    [miss_period]-th local access pays the refill penalty and energy.
    A period of 0 (scratchpad machines) makes this a no-op. *)
let local_miss t (c : core) =
  if t.cache_miss_period > 0 then begin
    c.local_accs <- c.local_accs + 1;
    if c.local_accs >= t.cache_miss_period then begin
      c.local_accs <- 0;
      spend t c t.cache_miss_penalty;
      let nj = t.cache_miss_energy_nj in
      Energy_ledger.charge c.ledger ~category:Energy_ledger.Communication nj;
      if c.prof_on then begin
        let sc = c.prof_cur.Profile.sl_cat in
        Array.unsafe_set sc 5 (Array.unsafe_get sc 5 +. nj)
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let runtime_err fmt = Format.kasprintf (fun s -> raise (Value.Runtime_error s)) fmt

let mem_array t (fr : frame) (s : Ir.sym) : Value.t array =
  match s.Ir.sym_space with
  | Ir.Shared | Ir.Rom -> (
    match Hashtbl.find_opt t.shared s.Ir.sym_name with
    | Some a -> a
    | None -> runtime_err "unknown global %s" s.Ir.sym_name)
  | Ir.Frame -> (
    match Hashtbl.find_opt fr.fmem s.Ir.sym_name with
    | Some a -> a
    | None -> runtime_err "unknown frame array %s" s.Ir.sym_name)

let mem_read t fr s idx =
  let a = mem_array t fr s in
  if idx < 0 || idx >= Array.length a then
    runtime_err "out-of-bounds read %s[%d] (len %d) in %s" (Ir.sym_to_string s)
      idx (Array.length a) fr.func.Prog.fname;
  a.(idx)

let mem_write t fr s idx v =
  let a = mem_array t fr s in
  if idx < 0 || idx >= Array.length a then
    runtime_err "out-of-bounds write %s[%d] (len %d) in %s" (Ir.sym_to_string s)
      idx (Array.length a) fr.func.Prog.fname;
  a.(idx) <- v

(* ------------------------------------------------------------------ *)
(* Instruction execution (interpretive mode)                           *)
(* ------------------------------------------------------------------ *)

let eval (fr : frame) = function
  | Ir.Reg r -> fr.regs.(r)
  | Ir.Imm c -> Value.of_const c

let setr (fr : frame) r v = fr.regs.(r) <- v

(** Handle an instruction executing on a gated component: implicit wakeup
    with full penalty.  Correct compiler output never triggers this. *)
let ensure_powered t (c : core) comp =
  let i = Component.index comp in
  if not c.powered.(i) then begin
    let pm = c.pm in
    c.powered.(i) <- true;
    recompute_leak t c;
    c.implicit_wakeups <- c.implicit_wakeups + 1;
    record t c "IMPLICIT WAKEUP of %s" (Component.to_string comp);
    c.gate_transitions <- c.gate_transitions + 1;
    Energy_ledger.charge c.ledger ~category:Energy_ledger.Gating_overhead
      pm.Power_model.gate_energy_nj;
    if c.prof_on then begin
      let sc = c.prof_cur.Profile.sl_cat in
      Array.unsafe_set sc 3
        (Array.unsafe_get sc 3 +. pm.Power_model.gate_energy_nj)
    end;
    spend t c pm.Power_model.wake_latency_cycles
  end

(* channels ride dedicated core-to-core mailbox links (as on PAC-style
   MPSoCs), so transfers pay a fixed link latency without occupying the
   shared bus *)
let complete_send t (sender : core) chan_id v =
  let ch = t.chans.(chan_id) in
  let m = t.machine in
  let link_ns =
    nominal_ns t (m.Machine.bus_latency_cycles + m.Machine.bus_word_cycles)
  in
  advance t sender link_ns ~idle:false;
  Energy_ledger.charge sender.ledger ~category:Energy_ledger.Communication
    m.Machine.bus_energy_per_word_nj;
  if sender.prof_on then begin
    (* a sender unblocked by [unblock_pass] still points at its Send
       slot, so the deferred transfer energy attributes correctly *)
    let sc = sender.prof_cur.Profile.sl_cat in
    Array.unsafe_set sc 5
      (Array.unsafe_get sc 5 +. m.Machine.bus_energy_per_word_nj)
  end;
  Queue.push (v, sender.clk.time) ch.queue;
  ch.total_msgs <- ch.total_msgs + 1;
  (* a blocked receiver may now have data *)
  t.sched_event <- true;
  t.unblock_dirty <- true

let barrier_participants t = Array.length t.cores

let release_barrier t bid =
  let b = t.barriers.(bid) in
  if List.length b.arrived = barrier_participants t then begin
    let tmax =
      List.fold_left (fun acc (_, tm) -> Float.max acc tm) 0.0 b.arrived
    in
    let release = tmax +. nominal_ns t t.machine.Machine.bus_latency_cycles in
    List.iter
      (fun (cid, _) ->
        let c = t.cores.(cid) in
        resume_at t c release;
        c.status <- Ready)
      b.arrived;
    b.arrived <- [];
    (* every participant's schedulability just changed *)
    t.sched_event <- true;
    t.unblock_dirty <- true
  end

(** Execute the terminator of the current block. *)
let exec_term t (c : core) (fr : frame) (term : Ir.term) =
  spend t c 1;
  charge_dynamic t c Component.Branch_unit;
  match term with
  | Ir.Jmp l ->
    fr.block <- l;
    fr.idx <- 0
  | Ir.Br (cond, l1, l2) ->
    fr.block <- (if Value.is_true (eval fr cond) then l1 else l2);
    fr.idx <- 0
  | Ir.Ret v_opt -> (
    let v = Option.map (eval fr) v_opt in
    match c.stack with
    | [] -> runtime_err "return with empty stack"
    | _ :: [] ->
      record t c "halt%s"
        (match v with
        | Some value -> " -> " ^ Value.to_string value
        | None -> "");
      c.status <- Halted v;
      t.live_cores <- t.live_cores - 1
    | _ :: (caller :: _ as rest) ->
      c.stack <- rest;
      (match (caller.pending_dst, v) with
      | (Some d, Some value) -> setr caller d value
      | (Some _, None) -> runtime_err "void return into a register"
      | (None, _) -> ());
      caller.pending_dst <- None)

let exec_instr t (c : core) (fr : frame) (di : Predecode.dinstr) =
  let comp = di.Predecode.di_comp in
  ensure_powered t c comp;
  let pm = c.pm in
  let i = di.Predecode.di_instr in
  let simple_cost () =
    spend t c di.Predecode.di_latency;
    charge_dynamic t c comp
  in
  (match i.Ir.idesc with
  | Ir.Const (d, cst) ->
    simple_cost ();
    setr fr d (Value.of_const cst)
  | Ir.Move (d, a) ->
    simple_cost ();
    setr fr d (eval fr a)
  | Ir.Binop (op, d, a, b) ->
    simple_cost ();
    setr fr d (Value.binop op (eval fr a) (eval fr b))
  | Ir.Unop (op, d, a) ->
    simple_cost ();
    setr fr d (Value.unop op (eval fr a))
  | Ir.Mac (d, a, b, cc) ->
    simple_cost ();
    setr fr d (Value.mac (eval fr a) (eval fr b) (eval fr cc))
  | Ir.Load (d, s, idx) -> (
    let idx = Value.to_int (eval fr idx) in
    match s.Ir.sym_space with
    | Ir.Shared ->
      spend t c 1;
      charge_dynamic t c comp;
      shared_access t c s;
      setr fr d (mem_read t fr s idx)
    | Ir.Rom | Ir.Frame ->
      spend t c (1 + Machine.spm_latency_cycles t.machine);
      local_miss t c;
      charge_dynamic t c comp;
      setr fr d (mem_read t fr s idx))
  | Ir.Store (s, idx, v) -> (
    let idx = Value.to_int (eval fr idx) in
    let v = eval fr v in
    match s.Ir.sym_space with
    | Ir.Shared ->
      spend t c 1;
      charge_dynamic t c comp;
      shared_access t c s;
      mem_write t fr s idx v
    | Ir.Rom | Ir.Frame ->
      spend t c (1 + Machine.spm_latency_cycles t.machine);
      local_miss t c;
      charge_dynamic t c comp;
      mem_write t fr s idx v)
  | Ir.Faa (d, s, amount) ->
    let amount = Value.to_int (eval fr amount) in
    spend t c 2;
    charge_dynamic t c comp;
    shared_access t c s;
    let old = Value.to_int (mem_read t fr s 0) in
    mem_write t fr s 0 (Value.Vint (Value.wrap32 (old + amount)));
    setr fr d (Value.Vint old)
  | Ir.Call (dst, callee, args) -> (
    simple_cost ();
    match Hashtbl.find_opt t.fsyms callee with
    | None -> runtime_err "call to unknown function %s" callee
    | Some cf ->
      let fe = cf.cf_fe in
      let new_fr = make_frame c cf in
      let nparams = Array.length fe.fe_params in
      let bound =
        List.fold_left
          (fun k arg ->
            if k >= nparams then runtime_err "too many arguments to %s" callee;
            new_fr.regs.(fe.fe_params.(k)) <- eval fr arg;
            k + 1)
          0 args
      in
      if bound <> nparams then runtime_err "arity mismatch calling %s" callee;
      fr.pending_dst <- dst;
      c.stack <- new_fr :: c.stack)
  | Ir.Pg_off comps ->
    spend t c 1;
    record t c "pg_off %s" (Component.Set.to_string comps);
    Component.Set.iter
      (fun comp ->
        let k = Component.index comp in
        if c.powered.(k) then begin
          c.powered.(k) <- false;
          c.gate_transitions <- c.gate_transitions + 1;
          Energy_ledger.charge c.ledger ~category:Energy_ledger.Gating_overhead
            pm.Power_model.gate_energy_nj;
          if c.prof_on then begin
            let sc = c.prof_cur.Profile.sl_cat in
            Array.unsafe_set sc 3
              (Array.unsafe_get sc 3 +. pm.Power_model.gate_energy_nj)
          end
        end)
      comps;
    recompute_leak t c
  | Ir.Pg_on comps ->
    record t c "pg_on %s" (Component.Set.to_string comps);
    let any = ref false in
    Component.Set.iter
      (fun comp ->
        let k = Component.index comp in
        if not c.powered.(k) then begin
          c.powered.(k) <- true;
          any := true;
          c.gate_transitions <- c.gate_transitions + 1;
          Energy_ledger.charge c.ledger ~category:Energy_ledger.Gating_overhead
            pm.Power_model.gate_energy_nj;
          if c.prof_on then begin
            let sc = c.prof_cur.Profile.sl_cat in
            Array.unsafe_set sc 3
              (Array.unsafe_get sc 3 +. pm.Power_model.gate_energy_nj)
          end
        end)
      comps;
    recompute_leak t c;
    (* components wake in parallel: one wake latency *)
    let stall = if !any then pm.Power_model.wake_latency_cycles else 0 in
    spend t c (1 + stall)
  | Ir.Dvfs level ->
    let target = Power_model.point pm level in
    if target.Operating_point.level <> c.point.Operating_point.level then begin
      spend t c pm.Power_model.dvfs_latency_cycles;
      Energy_ledger.charge c.ledger ~category:Energy_ledger.Dvfs_overhead
        pm.Power_model.dvfs_energy_nj;
      if c.prof_on then begin
        let sc = c.prof_cur.Profile.sl_cat in
        Array.unsafe_set sc 4
          (Array.unsafe_get sc 4 +. pm.Power_model.dvfs_energy_nj)
      end;
      c.point <- target;
      refresh_point_caches t c;
      c.dvfs_transitions <- c.dvfs_transitions + 1;
      record t c "dvfs -> %s" (Operating_point.to_string target);
      recompute_leak t c
    end
    else spend t c 1
  | Ir.Send (chan_id, v) ->
    spend t c t.machine.Machine.channel_setup_cycles;
    charge_dynamic t c comp;
    let v = eval fr v in
    let ch = t.chans.(chan_id) in
    if Queue.length ch.queue >= ch.cap then begin
      c.send_blocks <- c.send_blocks + 1;
      record t c "blocked sending on ch%d" chan_id;
      Queue.push c.id ch.waiting_senders;
      c.status <- Blocked_send (chan_id, v);
      t.unblock_dirty <- true
    end
    else complete_send t c chan_id v
  | Ir.Recv (d, chan_id, ty) ->
    spend t c t.machine.Machine.channel_setup_cycles;
    charge_dynamic t c comp;
    let ch = t.chans.(chan_id) in
    if Queue.is_empty ch.queue then begin
      c.recv_blocks <- c.recv_blocks + 1;
      record t c "blocked receiving on ch%d" chan_id;
      c.status <- Blocked_recv (chan_id, d, ty);
      t.unblock_dirty <- true
    end
    else begin
      let (v, ready) = Queue.pop ch.queue in
      resume_at t c ready;
      ch.last_pop <- fmax ch.last_pop c.clk.time;
      (match (ty, v) with
      | (Ir.I, Value.Vint _) | (Ir.F, Value.Vfloat _) -> ()
      | _ -> runtime_err "channel %d type mismatch" chan_id);
      setr fr d v
    end
  | Ir.Barrier bid ->
    spend t c 1;
    charge_dynamic t c comp;
    let b = t.barriers.(bid) in
    record t c "arrived at barrier %d" bid;
    b.arrived <- (c.id, c.clk.time) :: b.arrived;
    c.status <- Blocked_barrier bid;
    release_barrier t bid);
  c.instr_count <- c.instr_count + 1;
  if c.prof_on then
    c.prof_cur.Profile.sl_instrs <- c.prof_cur.Profile.sl_instrs + 1

let missing_block_err l fname =
  invalid_arg (Printf.sprintf "Prog.block: no L%d in %s" l fname)

let fetch_dblock (fr : frame) l : Predecode.dblock =
  let blocks = fr.dfunc.Predecode.df_blocks in
  if l < 0 || l >= Array.length blocks then
    missing_block_err l fr.func.Prog.fname
  else
    match blocks.(l) with
    | Some db -> db
    | None -> missing_block_err l fr.func.Prog.fname

(** Execute one step (instruction or terminator) on a ready core —
    interpretive mode. *)
let step_interp t (c : core) =
  match c.stack with
  | [] -> runtime_err "core %d has empty stack" c.id
  | fr :: _ ->
    if fr.dbid <> fr.block then begin
      fr.dblk <- fetch_dblock fr fr.block;
      fr.dbid <- fr.block
    end;
    let db = fr.dblk in
    if fr.idx < Array.length db.Predecode.db_instrs then begin
      let di = db.Predecode.db_instrs.(fr.idx) in
      fr.idx <- fr.idx + 1;
      if c.prof_on then
        c.prof_cur <-
          Profile.slot c.prof fr.func.Prog.fname
            di.Predecode.di_instr.Ir.loc.Ir.line;
      exec_instr t c fr di
    end
    else begin
      if c.prof_on then begin
        (* a terminator attributes to the line of the last instruction
           of its block (0 for empty blocks) — same rule the compiled
           mode bakes in at compile time *)
        let instrs = db.Predecode.db_instrs in
        let n = Array.length instrs in
        let line =
          if n = 0 then 0
          else instrs.(n - 1).Predecode.di_instr.Ir.loc.Ir.line
        in
        c.prof_cur <- Profile.slot c.prof fr.func.Prog.fname line
      end;
      exec_term t c fr db.Predecode.db_term
    end

(* ------------------------------------------------------------------ *)
(* Closure compilation (compiled mode)                                 *)
(* ------------------------------------------------------------------ *)

(* The compiled stepper executes [cb_instrs.(idx) frame].  Each
   closure performs the same state mutations, in the same order, as one
   [exec_instr] dispatch — with everything that is a pure function of
   the IR, the machine, or the current operating point resolved ahead of
   time: operand fetches, memory symbols, call targets, per-component
   dynamic energies (no [**] per instruction), and cycle→ns factors (no
   division per instruction). *)

let bump (c : core) =
  c.instr_count <- c.instr_count + 1;
  if c.prof_on then
    c.prof_cur.Profile.sl_instrs <- c.prof_cur.Profile.sl_instrs + 1

let branch_idx = Component.index Component.Branch_unit

let[@inline always] spend1 t (c : core) =
  c.cycles <- c.cycles + 1;
  if c.prof_on then
    c.prof_cur.Profile.sl_cycles <- c.prof_cur.Profile.sl_cycles + 1;
  advance t c c.clk.ns_per_cycle ~idle:false

let[@inline always] spend_nf t (c : core) n fn =
  c.cycles <- c.cycles + n;
  if c.prof_on then
    c.prof_cur.Profile.sl_cycles <- c.prof_cur.Profile.sl_cycles + n;
  advance t c (fn *. c.clk.ns_per_cycle) ~idle:false

(* A cycle cost known at decode time compiles to a direct [spend_nf]
   call with the count pre-floated.  [n = 1] needs no special case:
   [1.0 *. x] is exactly [x], so the charged duration is bit-identical
   to [spend1]. *)

(* hand-inlined [Energy_ledger.charge ~category:Dynamic ~component]:
   category, then component, then total — the same order, bit for bit *)
let[@inline always] charge_dyn (c : core) ci =
  let nj = Array.unsafe_get c.dyn_row ci in
  if nj < 0.0 then Energy_ledger.negative_energy ();
  Array.unsafe_set c.lg_cat 0 (Array.unsafe_get c.lg_cat 0 +. nj);
  Array.unsafe_set c.lg_comp ci (Array.unsafe_get c.lg_comp ci +. nj);
  Array.unsafe_set c.lg_tot 0 (Array.unsafe_get c.lg_tot 0 +. nj);
  if c.prof_on then begin
    let sc = c.prof_cur.Profile.sl_cat in
    Array.unsafe_set sc 0 (Array.unsafe_get sc 0 +. nj)
  end

(** Is it [c]'s turn to execute a {e globally-visible} instruction —
    one that touches state other cores can observe (shared memory, the
    bus, channels, barriers)?  Such instructions must execute in the
    exact (local time, core id) order of the per-step reference
    scheduler.  Core-local instructions commute with other cores'
    work, so batches run through them freely (when tracing is off) and
    only the visible ones re-check the race against the runner-up. *)
let[@inline always] visible_turn t (c : core) =
  let oi = t.batch_other in
  oi < 0
  ||
  let o = Array.unsafe_get t.cores oi in
  c.clk.time < o.clk.time || (c.clk.time = o.clk.time && c.id < o.id)

(** One-word shared-memory bus transaction (loads, stores, faa). *)
let bus_access1 t (c : core) =
  if t.faults_armed then
    Lp_util.Fault.check Lp_util.Fault.Sim_bus ~key:"bus";
  let start = fmax c.clk.time (Array.unsafe_get t.bus_free 0) in
  c.bus_txns <- c.bus_txns + 1;
  c.bus_words <- c.bus_words + 1;
  c.clk.bus_wait_ns <- c.clk.bus_wait_ns +. (start -. c.clk.time);
  if c.prof_on then begin
    let s = c.prof_cur in
    s.Profile.sl_bus_txns <- s.Profile.sl_bus_txns + 1;
    s.Profile.sl_bus_words <- s.Profile.sl_bus_words + 1;
    s.Profile.sl_bus_wait_ns <-
      s.Profile.sl_bus_wait_ns +. (start -. c.clk.time);
    let sc = s.Profile.sl_cat in
    Array.unsafe_set sc 5 (Array.unsafe_get sc 5 +. t.bus_word_energy_nj)
  end;
  Array.unsafe_set t.bus_free 0 (start +. t.bus_txn1_ns);
  let finish = start +. t.bus_txn1_ns +. t.shared_extra_ns in
  advance t c (finish -. c.clk.time) ~idle:false;
  (* hand-inlined [Energy_ledger.charge ~category:Communication] *)
  let nj = t.bus_word_energy_nj in
  if nj < 0.0 then Energy_ledger.negative_energy ();
  Array.unsafe_set c.lg_cat 5 (Array.unsafe_get c.lg_cat 5 +. nj);
  Array.unsafe_set c.lg_tot 0 (Array.unsafe_get c.lg_tot 0 +. nj)

(** Far-tier variant of {!bus_access1}: the off-bus latency is the far
    tier's, and the tier's per-access energy is charged on top.  Chosen
    at compile time per symbol, so near-only machines never branch. *)
let bus_access1_far t (c : core) =
  if t.faults_armed then
    Lp_util.Fault.check Lp_util.Fault.Sim_bus ~key:"bus";
  let start = fmax c.clk.time (Array.unsafe_get t.bus_free 0) in
  c.bus_txns <- c.bus_txns + 1;
  c.bus_words <- c.bus_words + 1;
  c.clk.bus_wait_ns <- c.clk.bus_wait_ns +. (start -. c.clk.time);
  if c.prof_on then begin
    let s = c.prof_cur in
    s.Profile.sl_bus_txns <- s.Profile.sl_bus_txns + 1;
    s.Profile.sl_bus_words <- s.Profile.sl_bus_words + 1;
    s.Profile.sl_bus_wait_ns <-
      s.Profile.sl_bus_wait_ns +. (start -. c.clk.time);
    let sc = s.Profile.sl_cat in
    Array.unsafe_set sc 5 (Array.unsafe_get sc 5 +. t.bus_word_energy_nj)
  end;
  Array.unsafe_set t.bus_free 0 (start +. t.bus_txn1_ns);
  let finish = start +. t.bus_txn1_ns +. t.far_extra_ns in
  advance t c (finish -. c.clk.time) ~idle:false;
  let nj = t.bus_word_energy_nj in
  if nj < 0.0 then Energy_ledger.negative_energy ();
  Array.unsafe_set c.lg_cat 5 (Array.unsafe_get c.lg_cat 5 +. nj);
  Array.unsafe_set c.lg_tot 0 (Array.unsafe_get c.lg_tot 0 +. nj);
  (* far-tier per-access energy, also Communication *)
  let fnj = t.far_energy_nj in
  if fnj < 0.0 then Energy_ledger.negative_energy ();
  Array.unsafe_set c.lg_cat 5 (Array.unsafe_get c.lg_cat 5 +. fnj);
  Array.unsafe_set c.lg_tot 0 (Array.unsafe_get c.lg_tot 0 +. fnj);
  if c.prof_on then begin
    let sc = c.prof_cur.Profile.sl_cat in
    Array.unsafe_set sc 5 (Array.unsafe_get sc 5 +. fnj)
  end

(** Implicit wakeup, compiled mode: identical to {!ensure_powered}'s slow
    path except leakage refresh is deferred to the wake-stall advance. *)
let wakeup_compiled t (c : core) comp ci =
  let pm = c.pm in
  c.powered.(ci) <- true;
  c.leak_dirty <- true;
  c.implicit_wakeups <- c.implicit_wakeups + 1;
  record_thunk t c (fun () -> "IMPLICIT WAKEUP of " ^ Component.to_string comp);
  c.gate_transitions <- c.gate_transitions + 1;
  Energy_ledger.charge c.ledger ~category:Energy_ledger.Gating_overhead
    pm.Power_model.gate_energy_nj;
  if c.prof_on then begin
    let sc = c.prof_cur.Profile.sl_cat in
    Array.unsafe_set sc 3
      (Array.unsafe_get sc 3 +. pm.Power_model.gate_energy_nj)
  end;
  spend_nf t c pm.Power_model.wake_latency_cycles
    (float_of_int pm.Power_model.wake_latency_cycles)

(* Register indices come out of the function's [reg_gen], and frames
   size [regs] from the same generator's high-water mark, so every
   compiled register access is in bounds by construction — the
   compiled closures use unchecked accesses. *)

let compile_operand (o : Ir.operand) : frame -> Value.t =
  match o with
  | Ir.Reg r -> fun fr -> Array.unsafe_get fr.regs r
  | Ir.Imm cst ->
    let v = Value.of_const cst in
    fun _ -> v

(** Integer-operand variant for memory indices and channel pay. The
    int is extracted once per execution, with the same runtime error
    as [Value.to_int] at the same point, but without going through a
    [Value.t]-returning closure first. *)
let compile_int_operand (o : Ir.operand) : frame -> int =
  match o with
  | Ir.Reg r -> fun fr -> Value.to_int (Array.unsafe_get fr.regs r)
  | Ir.Imm cst ->
    let n = Value.to_int (Value.of_const cst) in
    fun _ -> n

(** Resolve a memory symbol: shared/rom globals bind to their backing
    array outright; frame symbols bind to a position in the frame's
    array-of-arrays.  Unknown names compile to the interpreter's runtime
    error, raised at the same execution point. *)
let compile_sym t (df : Predecode.dfunc) (s : Ir.sym) : frame -> Value.t array =
  match s.Ir.sym_space with
  | Ir.Shared | Ir.Rom -> (
    match Hashtbl.find_opt t.shared s.Ir.sym_name with
    | Some a -> fun _ -> a
    | None -> fun _ -> runtime_err "unknown global %s" s.Ir.sym_name)
  | Ir.Frame -> (
    match Hashtbl.find_opt df.Predecode.df_frame_idx s.Ir.sym_name with
    | Some k -> fun fr -> fr.farrs.(k)
    | None -> fun _ -> runtime_err "unknown frame array %s" s.Ir.sym_name)

let compile_instr t (df : Predecode.dfunc) (di : Predecode.dinstr) :
    frame -> unit =
  let comp = di.Predecode.di_comp in
  let ci = di.Predecode.di_comp_idx in
  let lat = di.Predecode.di_latency in
  let latf = float_of_int lat in
  match di.Predecode.di_instr.Ir.idesc with
  | Ir.Const (d, cst) ->
    let v = Value.of_const cst in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      spend_nf t c lat latf;
      charge_dyn c ci;
      Array.unsafe_set fr.regs d v;
      bump c
  | Ir.Move (d, a) ->
    let geta = compile_operand a in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      spend_nf t c lat latf;
      charge_dyn c ci;
      Array.unsafe_set fr.regs d (geta fr);
      bump c
  | Ir.Binop (op, d, Ir.Reg ra, Ir.Reg rb) ->
    (* opcode dispatch hoisted to compile time ([Value.binop_fn]) and
       the register-register operand shape read directly — the common
       case costs one indirect call, not three plus an opcode match *)
    (* frequent opcodes fuse the arithmetic into the closure as a
       direct (inlined) call; the rest go through the [binop_fn]
       closure, which costs a generic 2-ary application *)
    (match op with
    | Ir.Add ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_add (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Sub ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_sub (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Mul ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_mul (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Lt ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_lt (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Le ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_le (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Gt ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_gt (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Ge ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_ge (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Eq ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_eq (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Ne ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_ne (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Fadd ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_fadd (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Fsub ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_fsub (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | Ir.Fmul ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (Value.v_fmul (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c
    | _ ->
      let f = Value.binop_fn op in
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d
          (f (Array.unsafe_get fr.regs ra) (Array.unsafe_get fr.regs rb));
        bump c)
  | Ir.Binop (op, d, Ir.Reg ra, Ir.Imm cb) ->
    let vb = Value.of_const cb in
    (match op with
    | Ir.Add ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_add (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Sub ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_sub (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Mul ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_mul (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Lt ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_lt (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Le ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_le (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Gt ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_gt (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Ge ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_ge (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Eq ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_eq (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Ne ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_ne (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Fadd ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_fadd (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Fsub ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_fsub (Array.unsafe_get fr.regs ra) vb);
        bump c
    | Ir.Fmul ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (Value.v_fmul (Array.unsafe_get fr.regs ra) vb);
        bump c
    | _ ->
      let f = Value.binop_fn op in
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        Array.unsafe_set fr.regs d (f (Array.unsafe_get fr.regs ra) vb);
        bump c)
  | Ir.Binop (op, d, a, b) ->
    let f = Value.binop_fn op in
    let geta = compile_operand a and getb = compile_operand b in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      spend_nf t c lat latf;
      charge_dyn c ci;
      Array.unsafe_set fr.regs d (f (geta fr) (getb fr));
      bump c
  | Ir.Unop (op, d, Ir.Reg ra) ->
    (* register shape specialised: reads the register directly instead
       of through a [compile_operand] closure *)
    let f = Value.unop_fn op in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      spend_nf t c lat latf;
      charge_dyn c ci;
      Array.unsafe_set fr.regs d (f (Array.unsafe_get fr.regs ra));
      bump c
  | Ir.Unop (op, d, a) ->
    let f = Value.unop_fn op in
    let geta = compile_operand a in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      spend_nf t c lat latf;
      charge_dyn c ci;
      Array.unsafe_set fr.regs d (f (geta fr));
      bump c
  | Ir.Mac (d, Ir.Reg ra, Ir.Reg rb, Ir.Reg rc) ->
    (* the kernel-loop shape (all three operands in registers): three
       direct register reads instead of three operand closures *)
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      spend_nf t c lat latf;
      charge_dyn c ci;
      let regs = fr.regs in
      Array.unsafe_set regs d
        (Value.mac
           (Array.unsafe_get regs ra)
           (Array.unsafe_get regs rb)
           (Array.unsafe_get regs rc));
      bump c
  | Ir.Mac (d, a, b, cc) ->
    let geta = compile_operand a
    and getb = compile_operand b
    and getc = compile_operand cc in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      spend_nf t c lat latf;
      charge_dyn c ci;
      Array.unsafe_set fr.regs d (Value.mac (geta fr) (getb fr) (getc fr));
      bump c
  | Ir.Load (d, s, idxo) -> (
    let geti = compile_int_operand idxo in
    let geta = compile_sym t df s in
    let sstr = Ir.sym_to_string s in
    match s.Ir.sym_space with
    | Ir.Shared when Hashtbl.mem t.far_syms s.Ir.sym_name ->
      (* far-tier symbol: same closure with the far bus transaction *)
      fun fr -> let c = fr.fcore in
        if not (visible_turn t c) then begin
          fr.idx <- fr.idx - 1;
          t.steps <- t.steps - 1;
          t.sched_event <- true
        end
        else begin
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          spend1 t c;
          charge_dyn c ci;
          bus_access1_far t c;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds read %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set fr.regs d (Array.unsafe_get a idx);
          bump c
        end
    | Ir.Shared ->
      fun fr -> let c = fr.fcore in
        if not (visible_turn t c) then begin
          (* not this core's turn: replay when re-picked; the attempt
             is not a step, or step counts would diverge from the
             per-step reference *)
          fr.idx <- fr.idx - 1;
          t.steps <- t.steps - 1;
          t.sched_event <- true
        end
        else begin
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          spend1 t c;
          charge_dyn c ci;
          bus_access1 t c;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds read %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set fr.regs d (Array.unsafe_get a idx);
          bump c
        end
    | Ir.Rom | Ir.Frame ->
      let spm_lat = 1 + Machine.spm_latency_cycles t.machine in
      let spm_latf = float_of_int spm_lat in
      if t.cache_miss_period > 0 then
        (* cache local store: count the access and take periodic misses *)
        fun fr -> let c = fr.fcore in
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          spend_nf t c spm_lat spm_latf;
          local_miss t c;
          charge_dyn c ci;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds read %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set fr.regs d (Array.unsafe_get a idx);
          bump c
      else
        fun fr -> let c = fr.fcore in
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          spend_nf t c spm_lat spm_latf;
          charge_dyn c ci;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds read %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set fr.regs d (Array.unsafe_get a idx);
          bump c)
  | Ir.Store (s, idxo, vo) -> (
    let geti = compile_int_operand idxo in
    let getv = compile_operand vo in
    let geta = compile_sym t df s in
    let sstr = Ir.sym_to_string s in
    match s.Ir.sym_space with
    | Ir.Shared when Hashtbl.mem t.far_syms s.Ir.sym_name ->
      (* far-tier symbol: same closure with the far bus transaction *)
      fun fr -> let c = fr.fcore in
        if not (visible_turn t c) then begin
          fr.idx <- fr.idx - 1;
          t.steps <- t.steps - 1;
          t.sched_event <- true
        end
        else begin
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          let v = getv fr in
          spend1 t c;
          charge_dyn c ci;
          bus_access1_far t c;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds write %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set a idx v;
          bump c
        end
    | Ir.Shared ->
      fun fr -> let c = fr.fcore in
        if not (visible_turn t c) then begin
          (* not this core's turn: replay when re-picked; the attempt
             is not a step, or step counts would diverge from the
             per-step reference *)
          fr.idx <- fr.idx - 1;
          t.steps <- t.steps - 1;
          t.sched_event <- true
        end
        else begin
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          let v = getv fr in
          spend1 t c;
          charge_dyn c ci;
          bus_access1 t c;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds write %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set a idx v;
          bump c
        end
    | Ir.Rom | Ir.Frame ->
      let spm_lat = 1 + Machine.spm_latency_cycles t.machine in
      let spm_latf = float_of_int spm_lat in
      if t.cache_miss_period > 0 then
        (* cache local store: count the access and take periodic misses *)
        fun fr -> let c = fr.fcore in
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          let v = getv fr in
          spend_nf t c spm_lat spm_latf;
          local_miss t c;
          charge_dyn c ci;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds write %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set a idx v;
          bump c
      else
        fun fr -> let c = fr.fcore in
          if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
          let idx = geti fr in
          let v = getv fr in
          spend_nf t c spm_lat spm_latf;
          charge_dyn c ci;
          let a = geta fr in
          if idx < 0 || idx >= Array.length a then
            runtime_err "out-of-bounds write %s[%d] (len %d) in %s" sstr idx
              (Array.length a) fr.func.Prog.fname;
          Array.unsafe_set a idx v;
          bump c)
  | Ir.Faa (d, s, amt) ->
    let getv = compile_operand amt in
    let geta = compile_sym t df s in
    let sstr = Ir.sym_to_string s in
    let far = Hashtbl.mem t.far_syms s.Ir.sym_name in
    fun fr -> let c = fr.fcore in
      if not (visible_turn t c) then begin
        (* not this core's turn: replay when re-picked; the attempt
           is not a step, or step counts would diverge from the
           per-step reference *)
        fr.idx <- fr.idx - 1;
        t.steps <- t.steps - 1;
        t.sched_event <- true
      end
      else begin
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        let amount = Value.to_int (getv fr) in
        spend_nf t c lat latf;
        charge_dyn c ci;
        if far then bus_access1_far t c else bus_access1 t c;
        let a = geta fr in
        if Array.length a = 0 then
          runtime_err "out-of-bounds read %s[%d] (len %d) in %s" sstr 0 0
            fr.func.Prog.fname;
        let old = Value.to_int a.(0) in
        a.(0) <- Value.Vint (Value.wrap32 (old + amount));
        Array.unsafe_set fr.regs d (Value.Vint old);
        bump c
      end
  | Ir.Call (dst, callee, args) -> (
    match Hashtbl.find_opt t.fsyms callee with
    | None ->
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        runtime_err "call to unknown function %s" callee
    | Some target_cf ->
      let params = target_cf.cf_fe.fe_params in
      let nparams = Array.length params in
      let nargs = List.length args in
      let getvs = Array.of_list (List.map compile_operand args) in
      let nbind = min nargs nparams in
      fun fr -> let c = fr.fcore in
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c lat latf;
        charge_dyn c ci;
        let new_fr = make_frame c target_cf in
        for k = 0 to nbind - 1 do
          new_fr.regs.(params.(k)) <- getvs.(k) fr
        done;
        if nargs > nparams then runtime_err "too many arguments to %s" callee;
        if nbind <> nparams then runtime_err "arity mismatch calling %s" callee;
        fr.pending_dst <- dst;
        c.stack <- new_fr :: c.stack;
        t.frames_dirty <- true;
        bump c)
  | Ir.Pg_off comps ->
    let setstr = Component.Set.to_string comps in
    let idxs =
      Array.of_list (List.map Component.index (Component.Set.elements comps))
    in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      (* gate energy from the executing core's class: the closure is
         shared across cores of different classes *)
      let ge = c.pm.Power_model.gate_energy_nj in
      spend1 t c;
      record_thunk t c (fun () -> "pg_off " ^ setstr);
      let any = ref false in
      Array.iter
        (fun k ->
          if c.powered.(k) then begin
            c.powered.(k) <- false;
            any := true;
            c.gate_transitions <- c.gate_transitions + 1;
            Energy_ledger.charge c.ledger
              ~category:Energy_ledger.Gating_overhead ge;
            if c.prof_on then begin
              let sc = c.prof_cur.Profile.sl_cat in
              Array.unsafe_set sc 3 (Array.unsafe_get sc 3 +. ge)
            end
          end)
        idxs;
      if !any then c.leak_dirty <- true;
      bump c
  | Ir.Pg_on comps ->
    let setstr = Component.Set.to_string comps in
    let idxs =
      Array.of_list (List.map Component.index (Component.Set.elements comps))
    in
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      let ge = c.pm.Power_model.gate_energy_nj in
      record_thunk t c (fun () -> "pg_on " ^ setstr);
      let any = ref false in
      Array.iter
        (fun k ->
          if not c.powered.(k) then begin
            c.powered.(k) <- true;
            any := true;
            c.gate_transitions <- c.gate_transitions + 1;
            Energy_ledger.charge c.ledger
              ~category:Energy_ledger.Gating_overhead ge;
            if c.prof_on then begin
              let sc = c.prof_cur.Profile.sl_cat in
              Array.unsafe_set sc 3 (Array.unsafe_get sc 3 +. ge)
            end
          end)
        idxs;
      if !any then begin
        c.leak_dirty <- true;
        (* components wake in parallel: one wake latency (this class's) *)
        let wake_lat = 1 + c.pm.Power_model.wake_latency_cycles in
        spend_nf t c wake_lat (float_of_int wake_lat)
      end
      else spend1 t c;
      bump c
  | Ir.Dvfs level ->
    (* the ladder belongs to the executing core's class, and the closure
       is shared across cores — resolve the level per execution; an
       absent level raises [Power_model.point]'s error exactly where the
       interpreter raises it.  Dvfs instructions are region boundaries,
       not loop bodies, so the lookup is off the hot path. *)
    fun fr -> let c = fr.fcore in
      if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
      let pm = c.pm in
      let target = Power_model.point pm level in
      if target.Operating_point.level <> c.point.Operating_point.level
      then begin
        let dvfs_lat = pm.Power_model.dvfs_latency_cycles in
        spend_nf t c dvfs_lat (float_of_int dvfs_lat);
        let de = pm.Power_model.dvfs_energy_nj in
        Energy_ledger.charge c.ledger ~category:Energy_ledger.Dvfs_overhead de;
        if c.prof_on then begin
          let sc = c.prof_cur.Profile.sl_cat in
          Array.unsafe_set sc 4 (Array.unsafe_get sc 4 +. de)
        end;
        c.point <- target;
        refresh_point_caches t c;
        c.leak_dirty <- true;
        c.dvfs_transitions <- c.dvfs_transitions + 1;
        record_thunk t c (fun () -> "dvfs -> " ^ Operating_point.to_string target)
      end
      else spend1 t c;
      bump c
  | Ir.Send (chan_id, vo) ->
    let getv = compile_operand vo in
    let setup_lat = t.machine.Machine.channel_setup_cycles in
    let setup_latf = float_of_int setup_lat in
    fun fr -> let c = fr.fcore in
      if not (visible_turn t c) then begin
        (* not this core's turn: replay when re-picked; the attempt
           is not a step, or step counts would diverge from the
           per-step reference *)
        fr.idx <- fr.idx - 1;
        t.steps <- t.steps - 1;
        t.sched_event <- true
      end
      else begin
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c setup_lat setup_latf;
        charge_dyn c ci;
        let v = getv fr in
        let ch = t.chans.(chan_id) in
        if Queue.length ch.queue >= ch.cap then begin
          c.send_blocks <- c.send_blocks + 1;
          record_thunk t c (fun () ->
              Printf.sprintf "blocked sending on ch%d" chan_id);
          Queue.push c.id ch.waiting_senders;
          c.status <- Blocked_send (chan_id, v);
          t.unblock_dirty <- true
        end
        else complete_send t c chan_id v;
        bump c
      end
  | Ir.Recv (d, chan_id, ty) ->
    let setup_lat = t.machine.Machine.channel_setup_cycles in
    let setup_latf = float_of_int setup_lat in
    fun fr -> let c = fr.fcore in
      if not (visible_turn t c) then begin
        (* not this core's turn: replay when re-picked; the attempt
           is not a step, or step counts would diverge from the
           per-step reference *)
        fr.idx <- fr.idx - 1;
        t.steps <- t.steps - 1;
        t.sched_event <- true
      end
      else begin
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend_nf t c setup_lat setup_latf;
        charge_dyn c ci;
        let ch = t.chans.(chan_id) in
        if Queue.is_empty ch.queue then begin
          c.recv_blocks <- c.recv_blocks + 1;
          record_thunk t c (fun () ->
              Printf.sprintf "blocked receiving on ch%d" chan_id);
          c.status <- Blocked_recv (chan_id, d, ty);
          t.unblock_dirty <- true
        end
        else begin
          let (v, ready) = Queue.pop ch.queue in
          (* a slot freed: a blocked sender may now complete *)
          t.sched_event <- true;
          t.unblock_dirty <- true;
          resume_at t c ready;
          ch.last_pop <- fmax ch.last_pop c.clk.time;
          (match (ty, v) with
          | (Ir.I, Value.Vint _) | (Ir.F, Value.Vfloat _) -> ()
          | _ -> runtime_err "channel %d type mismatch" chan_id);
          Array.unsafe_set fr.regs d v
        end;
        bump c
      end
  | Ir.Barrier bid ->
    fun fr -> let c = fr.fcore in
      if not (visible_turn t c) then begin
        (* not this core's turn: replay when re-picked; the attempt
           is not a step, or step counts would diverge from the
           per-step reference *)
        fr.idx <- fr.idx - 1;
        t.steps <- t.steps - 1;
        t.sched_event <- true
      end
      else begin
        if not (Array.unsafe_get c.powered ci) then wakeup_compiled t c comp ci;
        spend1 t c;
        charge_dyn c ci;
        let b = t.barriers.(bid) in
        record_thunk t c (fun () ->
            Printf.sprintf "arrived at barrier %d" bid);
        b.arrived <- (c.id, c.clk.time) :: b.arrived;
        c.status <- Blocked_barrier bid;
        release_barrier t bid;
        bump c
      end

(** A block that raises the [Prog.block] error when entered — holes in
    the label space behave exactly like the undecoded interpreter. *)
let poison_block l fname =
  {
    cb_instrs = [||];
    cb_n = 0;
    cb_pure = [||];
    cb_term = (fun _ -> missing_block_err l fname);
  }

(** Compile a branch target.  Captures the (stable) per-function block
    array, so filling order does not matter. *)
let compile_goto (cf : cfun) l : frame -> unit =
  let blocks = cf.cf_blocks in
  if l >= 0 && l < Array.length blocks then begin
    fun fr ->
      fr.block <- l;
      fr.idx <- 0;
      fr.cblk <- blocks.(l)
  end
  else begin
    let pb = poison_block l cf.cf_fe.fe_func.Prog.fname in
    fun fr ->
      fr.block <- l;
      fr.idx <- 0;
      fr.cblk <- pb
  end

let compile_term t (cf : cfun) (term : Ir.term) : frame -> unit =
  match term with
  | Ir.Jmp l ->
    let go = compile_goto cf l in
    fun fr -> let c = fr.fcore in
      spend1 t c;
      charge_dyn c branch_idx;
      go fr
  | Ir.Br (cond, l1, l2) ->
    let getc = compile_operand cond in
    let go1 = compile_goto cf l1 and go2 = compile_goto cf l2 in
    fun fr -> let c = fr.fcore in
      spend1 t c;
      charge_dyn c branch_idx;
      if Value.is_true (getc fr) then go1 fr else go2 fr
  | Ir.Ret v_opt ->
    let getv = Option.map compile_operand v_opt in
    fun fr -> let c = fr.fcore in
      spend1 t c;
      charge_dyn c branch_idx;
      let v = match getv with Some g -> Some (g fr) | None -> None in
      (match c.stack with
      | [] -> runtime_err "return with empty stack"
      | _ :: [] ->
        record_thunk t c (fun () ->
            "halt"
            ^
            match v with
            | Some value -> " -> " ^ Value.to_string value
            | None -> "");
        c.status <- Halted v;
        t.live_cores <- t.live_cores - 1
      | _ :: (caller :: _ as rest) ->
        c.stack <- rest;
        (match (caller.pending_dst, v) with
        | (Some d, Some value) -> caller.regs.(d) <- value
        | (Some _, None) -> runtime_err "void return into a register"
        | (None, _) -> ());
        caller.pending_dst <- None)

(** Is [di]'s compiled closure {e pure} for the batch loop — unable to
    change the core's status, raise [t.sched_event], or push a frame?
    Register/frame/ROM work, power gating and DVFS are core-local;
    anything touching shared memory, the bus, channels, barriers or the
    call stack is not.  (Pure closures may still abort the simulation
    with a runtime error; that path never reports an outcome, so the
    batched step accounting is unobservable there.) *)
let pure_instr (di : Predecode.dinstr) =
  match di.Predecode.di_instr.Ir.idesc with
  | Ir.Const _ | Ir.Move _ | Ir.Binop _ | Ir.Unop _ | Ir.Mac _
  | Ir.Pg_off _ | Ir.Pg_on _ | Ir.Dvfs _ -> true
  | Ir.Load (_, s, _) -> (
    match s.Ir.sym_space with Ir.Rom | Ir.Frame -> true | Ir.Shared -> false)
  | Ir.Store (s, _, _) -> (
    match s.Ir.sym_space with Ir.Rom | Ir.Frame -> true | Ir.Shared -> false)
  | Ir.Call _ | Ir.Send _ | Ir.Recv _ | Ir.Barrier _ | Ir.Faa _ -> false

let pure_runs (db : Predecode.dblock) =
  let instrs = db.Predecode.db_instrs in
  let n = Array.length instrs in
  let runs = Array.make n 0 in
  for i = n - 1 downto 0 do
    if pure_instr instrs.(i) then
      runs.(i) <- (1 + if i + 1 < n then runs.(i + 1) else 0)
  done;
  runs

(** Fill [cf]'s block array with compiled blocks.  [cf_blocks] must
    already be allocated (phase 1) so targets across functions resolve. *)
let compile_cfun t (cf : cfun) =
  let df = cf.cf_fe.fe_dfunc in
  let fname = cf.cf_fe.fe_func.Prog.fname in
  (* Profiling wrapper: compiled closures are shared across cores, so
     the slot cannot be captured directly — instead each wrapped
     closure captures one slot per core (resolved eagerly here, at
     compile time) and retargets the executing core's [prof_cur] before
     running the original closure.  Never-executed instructions leave
     their eagerly-created slots all-zero; {!Profile.collect} drops
     those, so the merged profile matches the interpreter's lazily
     created slot set exactly. *)
  let wrap line (g : frame -> unit) : frame -> unit =
    if not t.opts.profile then g
    else begin
      let slots =
        Array.map (fun (c : core) -> Profile.slot c.prof fname line) t.cores
      in
      fun fr ->
        let c = fr.fcore in
        c.prof_cur <- Array.unsafe_get slots c.id;
        g fr
    end
  in
  Array.iteri
    (fun l dbo ->
      match dbo with
      | None -> ()  (* stays poison *)
      | Some (db : Predecode.dblock) ->
        let cb_instrs =
          Array.map
            (fun (di : Predecode.dinstr) ->
              wrap di.Predecode.di_instr.Ir.loc.Ir.line (compile_instr t df di))
            db.Predecode.db_instrs
        in
        let term_line =
          let instrs = db.Predecode.db_instrs in
          let n = Array.length instrs in
          if n = 0 then 0
          else instrs.(n - 1).Predecode.di_instr.Ir.loc.Ir.line
        in
        cf.cf_blocks.(l) <-
          {
            cb_instrs;
            cb_n = Array.length cb_instrs;
            cb_pure = pure_runs db;
            cb_term = wrap term_line (compile_term t cf db.Predecode.db_term);
          })
    df.Predecode.df_blocks

(** Execute one step (instruction or terminator) — compiled mode. *)
let step_compiled (c : core) =
  match c.stack with
  | [] -> runtime_err "core %d has empty stack" c.id
  | fr :: _ ->
    let cb = fr.cblk in
    if fr.idx < cb.cb_n then begin
      let f = cb.cb_instrs.(fr.idx) in
      fr.idx <- fr.idx + 1;
      f fr
    end
    else cb.cb_term fr

(* ------------------------------------------------------------------ *)
(* Construction (continued): ties decode + compilation together        *)
(* ------------------------------------------------------------------ *)

let decode_cache :
    (Prog.t * ((string, Predecode.dfunc) Hashtbl.t * int)) option ref =
  ref None

let decode_prog_cached prog =
  match !decode_cache with
  | Some (p, res) when p == prog -> res
  | _ ->
    let res = Predecode.decode_prog prog in
    decode_cache := Some (prog, res);
    res

let create ?(opts = default_options) ~(machine : Machine.t) (prog : Prog.t) : t =
  let entries = Prog.entries prog in
  if List.length entries > Machine.n_cores machine then
    invalid_arg
      (Printf.sprintf "Sim.create: program needs %d cores, machine has %d"
         (List.length entries) (Machine.n_cores machine));
  let entry_funcs = List.map (Prog.func_exn prog) entries in
  (* class 0's nominal point is the machine reference clock *)
  let nominal = Power_model.nominal (Machine.ref_power machine) in
  let cores =
    Array.of_list
      (List.mapi
         (fun id _entry ->
           let ledger = Energy_ledger.create () in
           let prof = Profile.create_tab () in
           let cls = Machine.class_index_of_core machine id in
           let cc = machine.Machine.classes.(cls) in
           {
             id;
             cls;
             pm = cc.Machine.cc_power;
             perf_scale = cc.Machine.cc_perf_scale;
             stack = [];
             status = Ready;
             clk =
               {
                 time = 0.0;
                 busy_ns = 0.0;
                 bus_wait_ns = 0.0;
                 leak_mw = 0.0;
                 ns_per_cycle = 0.0;
               };
             (* each core starts at its own class's nominal point *)
             point = Power_model.nominal cc.Machine.cc_power;
             powered = Array.make Component.count true;
             ledger;
             lg_cat = Energy_ledger.raw_by_category ledger;
             lg_comp = Energy_ledger.raw_by_component ledger;
             lg_tot = Energy_ledger.raw_total ledger;
             leak_dirty = false;
             dyn_row = Array.make Component.count 0.0;
             instr_count = 0;
             implicit_wakeups = 0;
             gate_transitions = 0;
             dvfs_transitions = 0;
             send_blocks = 0;
             recv_blocks = 0;
             cycles = 0;
             bus_txns = 0;
             bus_words = 0;
             local_accs = 0;
             prof_on = opts.profile;
             prof;
             (* nothing charges before the first step repoints this *)
             prof_cur = Profile.slot prof "(idle)" 0;
           })
         entries)
  in
  let (n_channels, n_barriers, cap) =
    match prog.Prog.layout with
    | Prog.Sequential -> (0, 0, 0)
    | Prog.Parallel { n_channels; n_barriers; chan_capacity; _ } ->
      (n_channels, n_barriers, chan_capacity)
  in
  (* decode is likewise a pure function of the program (no machine
     state involved) and its output is immutable, so the same
     single-entry cache applies *)
  let (dfuncs, decoded_blocks) = decode_prog_cached prog in
  let fsyms = Hashtbl.create 16 in
  List.iter
    (fun (f : Prog.func) ->
      Hashtbl.replace fsyms f.Prog.fname
        {
          cf_fe =
            {
              fe_func = f;
              fe_params = Array.of_list (List.map fst f.Prog.params);
              fe_dfunc = Hashtbl.find dfuncs f.Prog.fname;
            };
          cf_blocks = [||];
        })
    (Prog.funcs prog);
  let nominal_ns_of n = Operating_point.ns_of_cycles nominal n in
  let shared = init_shared prog in
  (* place big shared arrays in the far tier (empty table when the
     machine has no far tier, keeping every access on the near path) *)
  let far_syms = Hashtbl.create 8 in
  (match machine.Machine.mem.Machine.far with
  | None -> ()
  | Some _ ->
    Hashtbl.iter
      (fun name arr ->
        if Machine.is_far machine (Array.length arr) then
          Hashtbl.replace far_syms name ())
      shared);
  let (cache_miss_period, cache_miss_penalty, cache_miss_energy_nj) =
    match machine.Machine.mem.Machine.local with
    | Machine.Scratchpad _ -> (0, 0, 0.0)
    | Machine.Cache { miss_period; miss_penalty_cycles; miss_energy_nj; _ } ->
      (miss_period, miss_penalty_cycles, miss_energy_nj)
  in
  let t =
    {
      prog;
      machine;
      opts;
      fsyms;
      dfuncs;
      decoded_blocks;
      cores;
      shared;
      chans =
        Array.init n_channels (fun _ ->
            { cap; queue = Queue.create (); waiting_senders = Queue.create ();
              total_msgs = 0; last_pop = 0.0 });
      barriers = Array.init n_barriers (fun _ -> { arrived = [] });
      bus_free = Array.make 1 0.0;
      steps = 0;
      trace = [];
      trace_len = 0;
      leak_recomputes = 0;
      sched_event = false;
      batch_other = -1;
      frames_dirty = false;
      live_cores = Array.length cores;
      unblock_dirty = true;
      faults_armed = Lp_util.Fault.active ();
      bus_txn1_ns =
        nominal_ns_of
          (machine.Machine.bus_latency_cycles + machine.Machine.bus_word_cycles);
      shared_extra_ns =
        nominal_ns_of (Machine.shared_mem_latency_cycles machine);
      bus_word_energy_nj = machine.Machine.bus_energy_per_word_nj;
      far_syms;
      far_extra_ns =
        (match machine.Machine.mem.Machine.far with
        | None -> 0.0
        | Some far ->
          nominal_ns_of
            (Machine.shared_mem_latency_cycles machine
            + far.Machine.tier_latency_cycles));
      far_energy_nj =
        (match machine.Machine.mem.Machine.far with
        | None -> 0.0
        | Some far -> far.Machine.tier_energy_per_access_nj);
      cache_miss_period;
      cache_miss_penalty;
      cache_miss_energy_nj;
    }
  in
  if opts.predecode then begin
    (* phase 1: allocate every function's block array (poison-filled) so
       calls and branches can capture targets across mutual recursion *)
    Hashtbl.iter
      (fun _ cf ->
        let df = cf.cf_fe.fe_dfunc in
        let fname = cf.cf_fe.fe_func.Prog.fname in
        cf.cf_blocks <-
          Array.init
            (Array.length df.Predecode.df_blocks)
            (fun l -> poison_block l fname))
      fsyms;
    (* phase 2: compile blocks in place *)
    Hashtbl.iter (fun _ cf -> compile_cfun t cf) fsyms
  end;
  List.iteri
    (fun i (f : Prog.func) ->
      cores.(i).stack <- [ make_frame cores.(i) (Hashtbl.find fsyms f.Prog.fname) ])
    entry_funcs;
  Array.iter
    (fun c ->
      refresh_point_caches t c;
      recompute_leak t c)
    cores;
  t

(* ------------------------------------------------------------------ *)
(* Scheduler loop                                                      *)
(* ------------------------------------------------------------------ *)

(** Try to unblock blocked cores; true if any progress was made. *)
let unblock_pass t : bool =
  let progress = ref false in
  Array.iter
    (fun c ->
      match c.status with
      | Blocked_recv (chan_id, d, ty) ->
        let ch = t.chans.(chan_id) in
        if not (Queue.is_empty ch.queue) then begin
          let (v, ready) = Queue.pop ch.queue in
          resume_at t c ready;
          ch.last_pop <- fmax ch.last_pop c.clk.time;
          (match (ty, v) with
          | (Ir.I, Value.Vint _) | (Ir.F, Value.Vfloat _) -> ()
          | _ -> runtime_err "channel %d type mismatch" chan_id);
          (match c.stack with
          | fr :: _ -> setr fr d v
          | [] -> runtime_err "blocked core with empty stack");
          c.status <- Ready;
          progress := true;
          (* a slot freed: complete one waiting sender, FIFO *)
          if not (Queue.is_empty ch.waiting_senders) then begin
            let sid = Queue.pop ch.waiting_senders in
            let s = t.cores.(sid) in
            match s.status with
            | Blocked_send (cid, sv) when cid = chan_id ->
              resume_at t s ch.last_pop;
              complete_send t s chan_id sv;
              s.status <- Ready
            | _ -> runtime_err "inconsistent sender queue on channel %d" chan_id
          end
        end
      | Blocked_send (chan_id, v) ->
        let ch = t.chans.(chan_id) in
        (* possible when capacity grew available without a blocked recv *)
        if Queue.length ch.queue < ch.cap
           && (not (Queue.is_empty ch.waiting_senders))
           && Queue.peek ch.waiting_senders = c.id then begin
          ignore (Queue.pop ch.waiting_senders);
          resume_at t c ch.last_pop;
          complete_send t c chan_id v;
          c.status <- Ready;
          progress := true
        end
      | Ready | Blocked_barrier _ | Halted _ -> ())
    t.cores;
  !progress

let all_halted t = t.live_cores = 0

let describe_blocked t =
  let parts =
    Array.to_list
      (Array.map
         (fun c ->
           let s =
             match c.status with
             | Ready -> "ready"
             | Blocked_send (ch, _) -> Printf.sprintf "send(ch%d)" ch
             | Blocked_recv (ch, _, _) -> Printf.sprintf "recv(ch%d)" ch
             | Blocked_barrier b -> Printf.sprintf "barrier(%d)" b
             | Halted _ -> "halted"
           in
           Printf.sprintf "core%d:%s" c.id s)
         t.cores)
  in
  String.concat " " parts

(** Batched stepping for the compiled mode: keep stepping [c] while it
    provably remains the scheduler's choice.  That holds while

    - [c] stays [Ready] (blocking or halting hands control back),
    - no {e scheduling event} has fired ([t.sched_event]: a channel
      push/pop or barrier release, which could make a blocked core
      schedulable or move another core's clock), and
    - [c]'s local time keeps it ahead of the best {e other} ready core
      under the pick rule (smallest time, ties to the lowest core id).

    Other ready cores' clocks only move when they are stepped, so the
    runner-up bound ([other_time], [other_id]) captured at pick time
    stays valid for the whole batch.  The interleaving is therefore
    exactly the one the per-step scheduler would produce; skipped
    [unblock_pass] calls are provably no-ops because every state change
    they react to raises [t.sched_event].  [t.steps] is maintained
    per-instruction so [Step_limit_exceeded] fires after exactly the
    same step as the one-at-a-time loop. *)
let[@inline always] batch_step t (c : core) lim =
  t.steps <- t.steps + 1;
  if t.steps > lim then raise Step_limit_exceeded;
  match c.stack with
  | [] -> runtime_err "core %d has empty stack" c.id
  | fr :: _ ->
    let cb = fr.cblk in
    if fr.idx < cb.cb_n then begin
      (* safe: [cb_n = Array.length cb_instrs] by construction *)
      let f = Array.unsafe_get cb.cb_instrs fr.idx in
      fr.idx <- fr.idx + 1;
      f fr
    end
    else cb.cb_term fr

let run_sched_batch t (c : core) ~other_i =
  let lim = t.opts.max_steps in
  t.batch_other <- other_i;
  if other_i < 0 || t.opts.trace_limit = 0 then
    (* Aggressive batch: core-local instructions (registers, frame and
       ROM memory, power state, calls) commute with other cores' work,
       so the batch runs through them regardless of the clock race.
       Globally-visible instructions carry a compiled-in turn guard
       ({!visible_turn}) that yields back to the scheduler exactly
       when the per-step reference would have run the runner-up first,
       so shared memory, bus, channel and barrier operations still
       execute in the reference (time, id) order.  The one observable
       this reorders is the interleaving of per-core entries in the
       event trace, so with tracing on ([trace_limit > 0]) the
       conservative per-step race check below is used instead. *)
    while
      (match c.status with
      | Ready -> true
      | Blocked_send _ | Blocked_recv _ | Blocked_barrier _ | Halted _ ->
        false)
      && not t.sched_event
    do
      (* a single-core (or far-ahead) batch can run the whole program
         without yielding to the scheduler, so the cooperative deadline
         must also be checked here — once per straight-line segment *)
      Lp_util.Deadline.check t.opts.deadline;
      match c.stack with
      | [] -> runtime_err "core %d has empty stack" c.id
      | fr :: _ ->
        (* Straight-line segment: the frame and block stay current
           until a terminator runs (re-fetched unconditionally after)
           or a [Call] pushes a frame ([frames_dirty]), so the head of
           the stack and the block arrays load once per segment, not
           once per instruction. *)
        let cb = fr.cblk in
        let instrs = cb.cb_instrs in
        let pure = cb.cb_pure in
        let n = cb.cb_n in
        t.frames_dirty <- false;
        while
          fr.idx < n
          && (not t.frames_dirty)
          && (match c.status with
             | Ready -> true
             | Blocked_send _ | Blocked_recv _ | Blocked_barrier _
             | Halted _ -> false)
          && not t.sched_event
        do
          (* a run of pure instructions can neither invalidate any of
             the loop conditions above nor hit the step limit (checked
             up front), so it executes with no per-instruction checks *)
          let run = Array.unsafe_get pure fr.idx in
          if run > 0 && t.steps + run <= lim then begin
            t.steps <- t.steps + run;
            let stop = fr.idx + run in
            while fr.idx < stop do
              (* safe: [cb_n = Array.length cb_instrs] by construction *)
              let f = Array.unsafe_get instrs fr.idx in
              fr.idx <- fr.idx + 1;
              f fr
            done
          end
          else begin
            t.steps <- t.steps + 1;
            if t.steps > lim then raise Step_limit_exceeded;
            let f = Array.unsafe_get instrs fr.idx in
            fr.idx <- fr.idx + 1;
            f fr
          end
        done;
        if
          fr.idx >= n
          && (not t.frames_dirty)
          && (match c.status with
             | Ready -> true
             | Blocked_send _ | Blocked_recv _ | Blocked_barrier _
             | Halted _ -> false)
          && not t.sched_event
        then begin
          t.steps <- t.steps + 1;
          if t.steps > lim then raise Step_limit_exceeded;
          cb.cb_term fr
        end
    done
  else begin
    let o = t.cores.(other_i) in
    let oid = o.id in
    while
      (match c.status with
      | Ready -> true
      | Blocked_send _ | Blocked_recv _ | Blocked_barrier _ | Halted _ ->
        false)
      && (not t.sched_event)
      && (c.clk.time < o.clk.time
         || (c.clk.time = o.clk.time && c.id < oid))
    do
      Lp_util.Deadline.check t.opts.deadline;
      batch_step t c lim
    done
  end

let run_loop t =
  let predecode = t.opts.predecode in
  let deadline = t.opts.deadline in
  let continue_ = ref true in
  while !continue_ do
    if all_halted t then continue_ := false
    else begin
      (* cooperative cancellation: one paced check per scheduling
         decision (compiled batches stay uninterrupted, so simulated
         state is never abandoned mid-instruction) *)
      Lp_util.Deadline.check deadline;
      (* unblock eagerly so that cores advance in (approximately) global
         virtual-time order — required for the shared-bus occupancy model
         to see transactions near-chronologically *)
      t.sched_event <- false;
      (* the pass only acts on channel-blocked cores and channel state;
         with [unblock_dirty] clear nothing relevant changed since the
         previous pass, so the compiled mode skips the provable no-op.
         The interpretive reference keeps the pass-every-step seed
         behaviour. *)
      if t.unblock_dirty || not predecode then begin
        t.unblock_dirty <- false;
        ignore (unblock_pass t)
      end;
      (* pick the ready core with the smallest local time (ties to the
         lowest id); also track the runner-up bound that lets the
         compiled mode keep stepping the pick without rescanning.  The
         scan works on array indices (core ids are their indices), so
         it allocates nothing — it runs once per scheduling decision,
         which for tightly interleaved cores means nearly every step *)
      let best_i = ref (-1) in
      let other_i = ref (-1) in
      for i = 0 to Array.length t.cores - 1 do
        let c = t.cores.(i) in
        match c.status with
        | Ready ->
          if !best_i < 0 then best_i := i
          else if c.clk.time < t.cores.(!best_i).clk.time then begin
            (* the old best was the minimum of everything seen so far,
               so it becomes the runner-up outright *)
            other_i := !best_i;
            best_i := i
          end
          else if !other_i < 0 || c.clk.time < t.cores.(!other_i).clk.time then
            other_i := i
        | Blocked_send _ | Blocked_recv _ | Blocked_barrier _ | Halted _ ->
          ()
      done;
      if !best_i < 0 then begin
        if not (unblock_pass t) then
          raise (Deadlock ("no runnable core: " ^ describe_blocked t))
      end
      else begin
        let c = t.cores.(!best_i) in
        if predecode then
          if t.sched_event then begin
            (* the unblock pass itself completed a send: another pass
               may unblock more, so single-step like the per-step
               scheduler.  [c] won the full pick scan, so a visible
               instruction needs no turn guard here *)
            t.batch_other <- -1;
            t.steps <- t.steps + 1;
            if t.steps > t.opts.max_steps then raise Step_limit_exceeded;
            step_compiled c
          end
          else run_sched_batch t c ~other_i:!other_i
        else begin
          t.steps <- t.steps + 1;
          if t.steps > t.opts.max_steps then raise Step_limit_exceeded;
          step_interp t c
        end
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  ret : Value.t option;             (** return value of core 0 *)
  duration_ns : float;
  energy : Energy_ledger.t;         (** machine-wide, merged *)
  core_ledgers : Energy_ledger.t array;
  class_energy : (string * Energy_ledger.t) list;
      (** per-core-class breakdown, in class order; includes the unused
          cores of each class.  Singleton on homogeneous machines. *)
  shared_final : (string, Value.t array) Hashtbl.t;
  instr_total : int;
  implicit_wakeups : int;
  gate_transitions : int;
  dvfs_transitions : int;
  busy_ns : float array;
  instrs_per_core : int array;
  send_blocks : int array;
  recv_blocks : int array;
  cycles_per_core : int array;   (** compute cycles issued per core *)
  bus_txns_per_core : int array; (** shared-bus transactions per core *)
  bus_words_per_core : int array;
  bus_wait_ns_per_core : float array;  (** contention: time waiting for the bus *)
  channel_msgs : int;
  steps : int;
  events : event list;  (** oldest first; bounded by [options.trace_limit] *)
  decoded_blocks : int;   (** blocks decoded once at construction *)
  leak_recomputes : int;  (** {!recompute_leak} invocations this run *)
  predecode : bool;       (** whether the compiled stepper was active *)
  profile : Profile.t option;
      (** per-(function, line) energy attribution; [Some] exactly when
          [options.profile] was set *)
}

(** Charge leakage of machine cores not used by the program, for the whole
    run duration — each unused core by its own class's power model. *)
let charge_unused_cores t ~duration =
  let used = Array.length t.cores in
  let m = t.machine in
  let ledgers = ref [] in
  for id = used to Machine.n_cores m - 1 do
    let pm = Machine.power_of_core m id in
    let ledger = Energy_ledger.create () in
    List.iter
      (fun comp ->
        let gated = t.opts.gate_unused_cores && Component.gateable comp in
        if not gated then
          Energy_ledger.charge ledger ~category:Energy_ledger.Leakage_idle
            ~component:comp
            (pm.Power_model.leak_power_mw comp *. duration *. 1e-3))
      m.Machine.components;
    if t.opts.gate_unused_cores then
      (* the initial gating transitions of that core *)
      List.iter
        (fun comp ->
          if Component.gateable comp then
            Energy_ledger.charge ledger
              ~category:Energy_ledger.Gating_overhead
              pm.Power_model.gate_energy_nj)
        m.Machine.components;
    ledgers := ledger :: !ledgers
  done;
  List.rev !ledgers

module Obs = Lp_obs.Obs

(** Feed the recorder from a finished simulation: one simulated-time span
    per core (on {!Obs.sim_pid}, so chrome://tracing shows the machine's
    timeline next to the compiler's wall clock) and the per-core
    cycle/bus/instruction counters. *)
let observe_outcome obs t ~duration =
  if Obs.enabled obs then begin
    Array.iter
      (fun (c : core) ->
        Obs.emit_span obs ~cat:"sim-core" ~pid:Obs.sim_pid ~tid:c.id
          ~start_ns:0.0 ~dur_ns:c.clk.time
          ~args:
            [
              ("instrs", Obs.Int c.instr_count);
              ("cycles", Obs.Int c.cycles);
              ("bus_txns", Obs.Int c.bus_txns);
              ("busy_ns", Obs.Float c.clk.busy_ns);
            ]
          (Printf.sprintf "core%d" c.id);
        let ctr fmt = Printf.sprintf fmt c.id in
        Obs.add obs (ctr "sim.core%d.instrs") c.instr_count;
        Obs.add obs (ctr "sim.core%d.cycles") c.cycles;
        Obs.add obs (ctr "sim.core%d.bus_txns") c.bus_txns;
        Obs.add obs (ctr "sim.core%d.bus_words") c.bus_words)
      t.cores;
    Obs.add obs "sim.runs" 1;
    Obs.add obs "sim.steps" t.steps;
    Obs.add obs "sim.channel_msgs"
      (Array.fold_left (fun a ch -> a + ch.total_msgs) 0 t.chans);
    (* an implicit wakeup means an instruction executed on a component
       the compiler had gated off — always a compiler bug, so the count
       is surfaced as a counter even when zero *)
    Obs.add obs "sim.implicit_wakeups"
      (Array.fold_left (fun a (c : core) -> a + c.implicit_wakeups) 0 t.cores);
    Obs.add obs "sim.leak_recomputes" t.leak_recomputes;
    Obs.add obs "sim.predecode.blocks" t.decoded_blocks;
    Obs.add obs "sim.predecode.active" (if t.opts.predecode then 1 else 0);
    Obs.set_gauge obs "sim.last_duration_ns" duration
  end

let run ?(opts = default_options) ?(obs = Obs.disabled) ~machine prog : outcome =
  Lp_util.Fault.check Lp_util.Fault.Pre_simulate ~key:"run";
  let t = create ~opts ~machine prog in
  Obs.span obs ~cat:"sim" "simulate" (fun () -> run_loop t);
  let duration =
    Array.fold_left (fun acc c -> Float.max acc c.clk.time) 0.0 t.cores
  in
  (* cores that halted early leak (idle) until the machine finishes;
     that alignment belongs to no instruction, so it attributes to the
     synthetic "(idle)" row *)
  Array.iter
    (fun c ->
      if c.prof_on then c.prof_cur <- Profile.slot c.prof "(idle)" 0;
      if c.clk.time < duration then resume_at t c duration)
    t.cores;
  let unused = charge_unused_cores t ~duration in
  let profile =
    if not t.opts.profile then None
    else begin
      let extra = Profile.create_tab () in
      (match unused with
      | [] -> ()
      | ledgers ->
        let s = Profile.slot extra "(unused-cores)" 0 in
        List.iter
          (fun l ->
            let cat = Energy_ledger.raw_by_category l in
            for i = 0 to Profile.num_categories - 1 do
              s.Profile.sl_cat.(i) <- s.Profile.sl_cat.(i) +. cat.(i)
            done)
          ledgers);
      Some
        (Profile.collect
           (Array.append
              (Array.map (fun c -> c.prof) t.cores)
              [| extra |]))
    end
  in
  observe_outcome obs t ~duration;
  let energy = Energy_ledger.create () in
  Array.iter (fun c -> Energy_ledger.merge_into ~dst:energy ~src:c.ledger) t.cores;
  List.iter (fun l -> Energy_ledger.merge_into ~dst:energy ~src:l) unused;
  let used = Array.length t.cores in
  let class_energy =
    Array.to_list
      (Array.mapi
         (fun k (cc : Machine.core_class) ->
           let l = Energy_ledger.create () in
           Array.iter
             (fun c ->
               if c.cls = k then Energy_ledger.merge_into ~dst:l ~src:c.ledger)
             t.cores;
           List.iteri
             (fun i ul ->
               if Machine.class_index_of_core t.machine (used + i) = k then
                 Energy_ledger.merge_into ~dst:l ~src:ul)
             unused;
           (cc.Machine.cc_name, l))
         t.machine.Machine.classes)
  in
  let ret =
    match t.cores.(0).status with Halted v -> v | _ -> None
  in
  {
    ret;
    duration_ns = duration;
    energy;
    core_ledgers = Array.map (fun c -> c.ledger) t.cores;
    class_energy;
    shared_final = t.shared;
    instr_total = Array.fold_left (fun a (c : core) -> a + c.instr_count) 0 t.cores;
    implicit_wakeups =
      Array.fold_left (fun a (c : core) -> a + c.implicit_wakeups) 0 t.cores;
    gate_transitions =
      Array.fold_left (fun a (c : core) -> a + c.gate_transitions) 0 t.cores;
    dvfs_transitions =
      Array.fold_left (fun a (c : core) -> a + c.dvfs_transitions) 0 t.cores;
    busy_ns = Array.map (fun (c : core) -> c.clk.busy_ns) t.cores;
    instrs_per_core = Array.map (fun (c : core) -> c.instr_count) t.cores;
    send_blocks = Array.map (fun (c : core) -> c.send_blocks) t.cores;
    recv_blocks = Array.map (fun (c : core) -> c.recv_blocks) t.cores;
    cycles_per_core = Array.map (fun (c : core) -> c.cycles) t.cores;
    bus_txns_per_core = Array.map (fun (c : core) -> c.bus_txns) t.cores;
    bus_words_per_core = Array.map (fun (c : core) -> c.bus_words) t.cores;
    bus_wait_ns_per_core = Array.map (fun (c : core) -> c.clk.bus_wait_ns) t.cores;
    channel_msgs = Array.fold_left (fun a ch -> a + ch.total_msgs) 0 t.chans;
    steps = t.steps;
    events = List.rev t.trace;
    decoded_blocks = t.decoded_blocks;
    leak_recomputes = t.leak_recomputes;
    predecode = t.opts.predecode;
    profile;
  }

(** Map the exceptions a simulation can raise onto structured
    diagnostics; [None] for exceptions the simulator does not own. *)
let diag_of_exn : exn -> Lp_util.Diag.t option =
  let module D = Lp_util.Diag in
  function
  | D.Error d -> Some d
  | Deadlock msg -> Some (D.make D.Simulate ~code:"E_DEADLOCK" msg)
  | Step_limit_exceeded ->
    Some (D.make D.Simulate ~code:"E_STEP_LIMIT" "simulation step limit exceeded")
  | Value.Runtime_error msg -> Some (D.make D.Simulate ~code:"E_RUNTIME" msg)
  | _ -> None

(** [run], but failures come back as structured diagnostics instead of
    escaping as exceptions. *)
let run_result ?opts ?obs ~machine prog : (outcome, Lp_util.Diag.t) result =
  match run ?opts ?obs ~machine prog with
  | o -> Ok o
  | exception e -> (
    match diag_of_exn e with Some d -> Error d | None -> raise e)

(** Read back a global cell after the run (for correctness checks). *)
let shared_cell (o : outcome) name idx =
  match Hashtbl.find_opt o.shared_final name with
  | Some a when idx >= 0 && idx < Array.length a -> Some a.(idx)
  | Some _ | None -> None

let shared_array (o : outcome) name = Hashtbl.find_opt o.shared_final name

(** Energy-delay product in nJ*ms — the metric of figure F2. *)
let edp (o : outcome) = Energy_ledger.total o.energy *. (o.duration_ns *. 1e-6)
