(** Source-level energy attribution.

    When profiling is on, every nanojoule the simulator charges to a
    core's {!Lp_power.Energy_ledger} is *also* added to a {e slot} keyed
    by (function name, source line): the simulator keeps a per-core
    current-slot pointer that the steppers update before executing each
    instruction, and each charge site adds the identical float into the
    slot's matching category cell.  Attribution is a pure observer —
    ledgers, cycle counts and simulated state are byte-identical with
    profiling on or off, because no simulated value is read from or
    rounds through a slot.

    Line 0 means compiler-synthesised code with no surviving source
    provenance (see {!Lp_ir.Ir.loc}).  Two synthetic function names
    carry charges no instruction owns: ["(idle)"] (end-of-run alignment
    of early-halted cores) and ["(unused-cores)"] (leakage and gating of
    machine cores the program never occupied).

    Cross-mode byte-equality: within one core, the closure-compiled and
    interpretive steppers execute the same instruction sequence and
    perform the same charges in the same order, so each (core, slot)
    accumulates the identical float sums; {!collect} then merges across
    cores in core-id order and emits rows sorted by (function, line),
    making the final profile independent of slot-creation order — the
    compiled mode creates slots eagerly at compile time, the interpreter
    lazily at first execution, and all-zero rows (never-executed code)
    are dropped so both modes produce the same row set. *)

(** Fixed category axis, mirroring
    [Lp_power.Energy_ledger.raw_by_category]: dynamic=0, leak-active=1,
    leak-idle=2, gate-ovh=3, dvfs-ovh=4, comm=5. *)
let num_categories = 6

let category_names =
  [| "dynamic"; "leak-active"; "leak-idle"; "gate-ovh"; "dvfs-ovh"; "comm" |]

type slot = {
  sl_func : string;
  sl_line : int;  (** 1-based source line; 0 = synthesised *)
  sl_cat : float array;  (** nJ by ledger category index *)
  mutable sl_cycles : int;       (** compute cycles issued here *)
  mutable sl_instrs : int;       (** instructions retired here *)
  mutable sl_bus_txns : int;     (** shared-bus transactions *)
  mutable sl_bus_words : int;    (** words moved over the shared bus *)
  mutable sl_bus_wait_ns : float;  (** bus contention stall time *)
}

let fresh_slot fname line =
  {
    sl_func = fname;
    sl_line = line;
    sl_cat = Array.make num_categories 0.0;
    sl_cycles = 0;
    sl_instrs = 0;
    sl_bus_txns = 0;
    sl_bus_words = 0;
    sl_bus_wait_ns = 0.0;
  }

(** One core's attribution table. *)
type tab = { tslots : (string * int, slot) Hashtbl.t }

let create_tab () = { tslots = Hashtbl.create 64 }

(** Find-or-create the slot for ([fname], [line]). *)
let slot (tab : tab) fname line : slot =
  let key = (fname, line) in
  match Hashtbl.find_opt tab.tslots key with
  | Some s -> s
  | None ->
    let s = fresh_slot fname line in
    Hashtbl.replace tab.tslots key s;
    s

let slot_total (s : slot) =
  Array.fold_left ( +. ) 0.0 s.sl_cat

let is_zero (s : slot) =
  s.sl_cycles = 0 && s.sl_instrs = 0 && s.sl_bus_txns = 0
  && s.sl_bus_words = 0 && s.sl_bus_wait_ns = 0.0
  && Array.for_all (fun x -> x = 0.0) s.sl_cat

(** Merged profile: one row per (function, line), sorted by (function,
    line) ascending. *)
type t = slot array

(** Merge per-core tables into the final profile.  Floats are summed in
    core-array order per key, so the result is deterministic and
    mode-independent (a key missing from a core contributes nothing,
    which equals adding that core's all-zero slot: every accumulated
    value is non-negative and finite, so [x +. 0.0 = x] bit for bit). *)
let collect (tabs : tab array) : t =
  let keys = Hashtbl.create 256 in
  Array.iter
    (fun tab -> Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tab.tslots)
    tabs;
  let klist =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) keys [])
  in
  let rows =
    List.filter_map
      (fun (fname, line) ->
        let acc = fresh_slot fname line in
        Array.iter
          (fun tab ->
            match Hashtbl.find_opt tab.tslots (fname, line) with
            | None -> ()
            | Some s ->
              for i = 0 to num_categories - 1 do
                acc.sl_cat.(i) <- acc.sl_cat.(i) +. s.sl_cat.(i)
              done;
              acc.sl_cycles <- acc.sl_cycles + s.sl_cycles;
              acc.sl_instrs <- acc.sl_instrs + s.sl_instrs;
              acc.sl_bus_txns <- acc.sl_bus_txns + s.sl_bus_txns;
              acc.sl_bus_words <- acc.sl_bus_words + s.sl_bus_words;
              acc.sl_bus_wait_ns <- acc.sl_bus_wait_ns +. s.sl_bus_wait_ns)
          tabs;
        if is_zero acc then None else Some acc)
      klist
  in
  Array.of_list rows

(** Sum of every row's attributed energy.  Partitioned sums round
    differently from the ledger's chronological accumulation, so this
    matches [Energy_ledger.total] only to ~1e-9 relative — reports quote
    the ledger's byte-exact total and use this for coverage checks. *)
let total (p : t) = Array.fold_left (fun a s -> a +. slot_total s) 0.0 p
