(** Static pre-decode of IR functions for the simulator.

    The interpretive stepper used to re-derive, on every executed
    instruction, facts that are a pure function of the IR: the component
    an instruction occupies, its base latency, and (once per block
    entry) an [Array.of_list] copy of the block's instruction list.
    This module computes all of that exactly once per function, before
    simulation starts, so both simulator modes (closure-compiled and
    interpretive) fetch instructions from immutable arrays.

    Everything here is a pure function of the IR — no simulator state —
    which keeps the decode tables shareable between the two execution
    modes and trivially correct with respect to byte-identical output. *)

module Ir = Lp_ir.Ir
module Prog = Lp_ir.Prog
module Component = Lp_power.Component

(** One decoded instruction: the original plus the per-opcode facts the
    stepper needs on every execution. *)
type dinstr = {
  di_instr : Ir.instr;
  di_comp : Component.t;   (** [Ir.component_of], precomputed *)
  di_comp_idx : int;       (** [Component.index di_comp] *)
  di_latency : int;        (** [Ir.base_latency], precomputed *)
}

type dblock = {
  db_label : Ir.label;
  db_instrs : dinstr array;
  db_term : Ir.term;
}

(** A decoded function.  [df_blocks] is indexed directly by block label
    (labels are dense, from the function's block id generator); a [None]
    hole marks a label with no block — entering it reproduces the
    [Prog.block] error of the undecoded interpreter. *)
type dfunc = {
  df_func : Prog.func;
  df_blocks : dblock option array;
  df_frame_idx : (string, int) Hashtbl.t;
      (** frame-array name -> position in [Prog.frame_arrays] order *)
  df_nblocks : int;  (** number of decoded blocks (array holes excluded) *)
}

(** Placeholder for lazily-initialised block caches; never executed. *)
let dummy_block = { db_label = -1; db_instrs = [||]; db_term = Ir.Ret None }

let decode_instr (i : Ir.instr) : dinstr =
  let comp = Ir.component_of i in
  {
    di_instr = i;
    di_comp = comp;
    di_comp_idx = Component.index comp;
    di_latency = Ir.base_latency i;
  }

let decode_block (b : Ir.block) : dblock =
  {
    db_label = b.Ir.bid;
    db_instrs = Array.of_list (List.map decode_instr b.Ir.instrs);
    db_term = b.Ir.term;
  }

let decode_func (f : Prog.func) : dfunc =
  (* labels come from the function's block generator, so [peek] bounds
     them; tolerate foreign labels by sizing to the largest key seen *)
  let max_label =
    Hashtbl.fold (fun l _ acc -> max l acc) f.Prog.blocks
      (Lp_util.Id_gen.peek f.Prog.block_gen - 1)
  in
  let df_blocks = Array.make (max 1 (max_label + 1)) None in
  let count = ref 0 in
  Hashtbl.iter
    (fun l b ->
      if l >= 0 then begin
        df_blocks.(l) <- Some (decode_block b);
        incr count
      end)
    f.Prog.blocks;
  let df_frame_idx = Hashtbl.create 4 in
  List.iteri
    (fun k (name, _, _) -> Hashtbl.replace df_frame_idx name k)
    f.Prog.frame_arrays;
  { df_func = f; df_blocks; df_frame_idx; df_nblocks = !count }

(** Decode every function of a program; returns the table (by function
    name) and the total number of decoded blocks — which tests compare
    against the program's block count to prove decode work is
    per-function, not per-block-entry. *)
let decode_prog (prog : Prog.t) : (string, dfunc) Hashtbl.t * int =
  let table = Hashtbl.create 16 in
  let total = ref 0 in
  List.iter
    (fun (f : Prog.func) ->
      let df = decode_func f in
      total := !total + df.df_nblocks;
      Hashtbl.replace table f.Prog.fname df)
    (Prog.funcs prog);
  (table, !total)
