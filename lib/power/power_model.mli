(** Analytic power/energy model of one embedded core.

    Energies in nanojoules, powers in milliwatts, times in nanoseconds.
    The model charges dynamic energy per executed operation (scaled by
    voltage squared), leakage power per powered component (gated
    components leak nothing), and fixed penalties for gating and DVFS
    transitions. *)

type t = {
  points : Operating_point.t list;  (** available V/f points, ascending *)
  nominal : Operating_point.t;      (** highest point, scaling reference *)
  dyn_energy_nj : Component.t -> float;
  leak_power_mw : Component.t -> float;
  gate_energy_nj : float;
  wake_latency_cycles : int;
  dvfs_energy_nj : float;
  dvfs_latency_cycles : int;
}

val points : t -> Operating_point.t list
val nominal : t -> Operating_point.t

(** Operating point by level; raises [Invalid_argument] if absent. *)
val point : t -> int -> Operating_point.t

(** Level of the nominal (fastest) point. *)
val max_level : t -> int

(** Energy of [ops] operations on [comp] at point [point]. *)
val dynamic_energy :
  t -> comp:Component.t -> point:Operating_point.t -> ops:int -> float

(** Leakage energy of [comp] powered for [ns] nanoseconds at [point]. *)
val leakage_energy :
  t -> comp:Component.t -> point:Operating_point.t -> ns:float -> float

(** Idle time above which gating [comp] saves energy (two transitions
    amortised against saved leakage), in ns / in cycles at [point]. *)
val break_even_ns : t -> comp:Component.t -> point:Operating_point.t -> float

val break_even_cycles :
  t -> comp:Component.t -> point:Operating_point.t -> int

(** Default parameterisation (90nm-flavoured embedded DSP), [n_levels]
    operating points between 100MHz/0.8V and 400MHz/1.2V. *)
val default : ?n_levels:int -> unit -> t

(** Leakage-heavy variant (3x leakage), for sensitivity experiments. *)
val leaky : ?n_levels:int -> unit -> t

(** In-order efficiency core for big.LITTLE machines: a coarser
    3-point 50-200MHz / 0.70-0.95V ladder (a different shape from the
    big ladder), half dynamic energy, 40% leakage, cheaper gating/DVFS
    transitions. *)
val little : ?n_levels:int -> unit -> t

(** Whether two models expose byte-for-byte the same DVFS ladder; a raw
    [dvfs] level is portable between core classes exactly when true. *)
val same_ladder : t -> t -> bool

(** Compact one-line ladder description, for reports and listings. *)
val describe_ladder : t -> string

(** Override the gating transition energy (break-even sweep). *)
val with_gate_energy : t -> float -> t

(** Replace the operating-point ladder; the last point becomes nominal. *)
val with_points : t -> Operating_point.t list -> t
