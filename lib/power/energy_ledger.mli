(** Energy accounting (nanojoules), broken down by spending category and
    by datapath component. *)

type category =
  | Dynamic          (** executing instructions *)
  | Leakage_active   (** leakage while the core executes *)
  | Leakage_idle     (** leakage while blocked / after halting *)
  | Gating_overhead  (** pg_on / pg_off transition energy *)
  | Dvfs_overhead    (** DVFS transition energy *)
  | Communication    (** bus transfers, channel operations *)

val all_categories : category list
val category_to_string : category -> string

type t

val create : unit -> t

(** Add [nj] nanojoules under [category] (and optionally attributed to a
    component).  Raises [Invalid_argument] on negative energy. *)
val charge : t -> category:category -> ?component:Component.t -> float -> unit

(** Raw accumulator cells for the simulator's per-instruction hot
    path.  [raw_by_category] is the category axis at fixed indices
    (dynamic=0, leak-active=1, leak-idle=2, gating=3, dvfs=4, comm=5),
    [raw_by_component] the component axis indexed by
    [Component.index], and [raw_total] a one-element cell holding the
    running total.  Adding [nj >= 0] to the matching category cell
    (plus the component cell for attributed charges) and to the total,
    in that order, is exactly {!charge}; the simulator hand-inlines
    that because a per-instruction cross-module call with a float
    argument boxes the float (no flambda).  Call {!negative_energy} in
    place of a negative add so the error is the same as {!charge}'s. *)

val raw_by_category : t -> float array
val raw_by_component : t -> float array
val raw_total : t -> float array

(** Raises the [Invalid_argument] that {!charge} raises on negative
    energy. *)
val negative_energy : unit -> 'a

val total : t -> float
val of_category : t -> category -> float
val of_component : t -> Component.t -> float

(** Accumulate [src] into [dst] (used to aggregate per-core ledgers). *)
val merge_into : dst:t -> src:t -> unit

(** All categories with their totals, in [all_categories] order. *)
val breakdown : t -> (category * float) list

(** All components with their attributed totals, in [Component.all]
    order.  Core-level charges (idle leakage, bus transfers, transition
    overheads) carry no component and are absent from this axis. *)
val component_breakdown : t -> (Component.t * float) list

(** One line: total, then the non-zero categories in [[...]] and the
    non-zero per-component attributions in [{...}]. *)
val pp : Format.formatter -> t -> unit

(** Machine-readable dump ([total_nj], [by_category], [by_component]);
    every category and component is present even when zero, so the
    schema is stable (documented in docs/POWER_MODEL.md). *)
val to_json : t -> Lp_util.Json.t
