(** Energy accounting (nanojoules), broken down by spending category and
    by datapath component. *)

type category =
  | Dynamic          (** executing instructions *)
  | Leakage_active   (** leakage while the core executes *)
  | Leakage_idle     (** leakage while blocked / after halting *)
  | Gating_overhead  (** pg_on / pg_off transition energy *)
  | Dvfs_overhead    (** DVFS transition energy *)
  | Communication    (** bus transfers, channel operations *)

val all_categories : category list
val category_to_string : category -> string

type t

val create : unit -> t

(** Add [nj] nanojoules under [category] (and optionally attributed to a
    component).  Raises [Invalid_argument] on negative energy. *)
val charge : t -> category:category -> ?component:Component.t -> float -> unit

val total : t -> float
val of_category : t -> category -> float
val of_component : t -> Component.t -> float

(** Accumulate [src] into [dst] (used to aggregate per-core ledgers). *)
val merge_into : dst:t -> src:t -> unit

(** All categories with their totals, in [all_categories] order. *)
val breakdown : t -> (category * float) list

(** All components with their attributed totals, in [Component.all]
    order.  Core-level charges (idle leakage, bus transfers, transition
    overheads) carry no component and are absent from this axis. *)
val component_breakdown : t -> (Component.t * float) list

(** One line: total, then the non-zero categories in [[...]] and the
    non-zero per-component attributions in [{...}]. *)
val pp : Format.formatter -> t -> unit

(** Machine-readable dump ([total_nj], [by_category], [by_component]);
    every category and component is present even when zero, so the
    schema is stable (documented in docs/POWER_MODEL.md). *)
val to_json : t -> Lp_util.Json.t
