(** Analytic power/energy model of one embedded core.

    The model charges:
    - dynamic energy per executed operation, per component, scaled by the
      square of the operating voltage;
    - leakage power per component while the component is powered
      (gated-off components leak nothing), scaled linearly by voltage;
    - fixed energy and latency penalties for power-gating transitions and
      for DVFS transitions.

    All energies are in nanojoules (nJ), powers in milliwatts (mW), times
    in nanoseconds (ns).  Note 1 mW * 1 ns = 1e-3 nJ. *)

type t = {
  points : Operating_point.t list;  (** available V/f points, ascending *)
  nominal : Operating_point.t;      (** highest point; reference for scaling *)
  dyn_energy_nj : Component.t -> float;
      (** dynamic energy of one operation on the component, at nominal V *)
  leak_power_mw : Component.t -> float;
      (** leakage power of the component while powered, at nominal V *)
  gate_energy_nj : float;      (** energy of one pg_off or pg_on transition *)
  wake_latency_cycles : int;   (** stall cycles for pg_on before first use *)
  dvfs_energy_nj : float;      (** energy of one DVFS transition *)
  dvfs_latency_cycles : int;   (** stall cycles for a DVFS transition *)
}

let points t = t.points
let nominal t = t.nominal

let point t level =
  match List.find_opt (fun (p : Operating_point.t) -> p.level = level) t.points with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Power_model.point: no level %d" level)

let max_level t = (nominal t).level

(** Energy of [n] operations on [comp] executed at point [p]. *)
let dynamic_energy t ~comp ~point:p ~ops =
  float_of_int ops *. t.dyn_energy_nj comp
  *. Operating_point.dynamic_scale ~nominal:t.nominal p

(** Leakage energy of [comp] powered for [ns] nanoseconds at point [p]. *)
let leakage_energy t ~comp ~point:p ~ns =
  t.leak_power_mw comp
  *. Operating_point.leakage_scale ~nominal:t.nominal p
  *. ns *. 1e-3

(** Break-even idle time (ns, at point [p]) above which gating a component
    saves energy: two transitions must be amortised by saved leakage. *)
let break_even_ns t ~comp ~point:p =
  let leak_mw =
    t.leak_power_mw comp *. Operating_point.leakage_scale ~nominal:t.nominal p
  in
  if leak_mw <= 0.0 then infinity
  else 2.0 *. t.gate_energy_nj /. (leak_mw *. 1e-3)

(** Same threshold expressed in cycles at point [p]; this is the number the
    compiler's gating pass compares idle-window lengths against. *)
let break_even_cycles t ~comp ~point:p =
  let ns = break_even_ns t ~comp ~point:p in
  if ns = infinity then max_int
  else int_of_float (ceil (ns /. (1000.0 /. p.Operating_point.freq_mhz)))

(* ------------------------------------------------------------------ *)
(* Default parameterisation.                                          *)
(* ------------------------------------------------------------------ *)

(* Per-operation dynamic energies, loosely calibrated to a 90nm embedded
   DSP: wide units (divider, FPU, MAC) cost several times an ALU op. *)
let default_dyn_energy : Component.t -> float = function
  | Component.Alu -> 0.08
  | Component.Shifter -> 0.06
  | Component.Branch_unit -> 0.05
  | Component.Multiplier -> 0.35
  | Component.Mac -> 0.42
  | Component.Divider -> 1.10
  | Component.Load_store -> 0.30
  | Component.Fpu -> 0.90

(* Leakage power in mW per component: wide units leak the most, which is
   exactly why component-level gating pays off on leakage-dominated
   technology nodes. *)
let default_leak_power : Component.t -> float = function
  | Component.Alu -> 0.60
  | Component.Shifter -> 0.35
  | Component.Branch_unit -> 0.25
  | Component.Multiplier -> 1.80
  | Component.Mac -> 2.20
  | Component.Divider -> 2.60
  | Component.Load_store -> 1.20
  | Component.Fpu -> 3.00

(** Default model: [n_levels] operating points between 100 MHz / 0.8 V and
    400 MHz / 1.2 V, PAC-Duo-flavoured gating costs. *)
let default ?(n_levels = 4) () =
  let points =
    Operating_point.ladder ~n:n_levels ~fmin:100.0 ~fmax:400.0 ~vmin:0.8
      ~vmax:1.2
  in
  let nominal = List.nth points (List.length points - 1) in
  {
    points;
    nominal;
    dyn_energy_nj = default_dyn_energy;
    leak_power_mw = default_leak_power;
    gate_energy_nj = 2.0;
    wake_latency_cycles = 3;
    dvfs_energy_nj = 60.0;
    dvfs_latency_cycles = 150;
  }

(** A leakage-heavy variant (smaller technology node): leakage tripled.
    Used by the sensitivity experiments. *)
let leaky ?(n_levels = 4) () =
  let base = default ~n_levels () in
  { base with leak_power_mw = (fun c -> 3.0 *. default_leak_power c) }

(** An in-order efficiency core for big.LITTLE machines: a slower,
    coarser ladder (3 points over 50-200 MHz at 0.70-0.95 V — a
    different shape from the big ladder, so the same slowdown bound
    lands on a different level), roughly half the per-op dynamic
    energy, 40% of the leakage, and cheaper gating/DVFS transitions.
    Its lower IPC is modelled by the machine's per-class perf scale,
    not here. *)
let little ?(n_levels = 3) () =
  let points =
    Operating_point.ladder ~n:n_levels ~fmin:50.0 ~fmax:200.0 ~vmin:0.7
      ~vmax:0.95
  in
  let nominal = List.nth points (List.length points - 1) in
  {
    points;
    nominal;
    dyn_energy_nj = (fun c -> 0.5 *. default_dyn_energy c);
    leak_power_mw = (fun c -> 0.4 *. default_leak_power c);
    gate_energy_nj = 1.2;
    wake_latency_cycles = 2;
    dvfs_energy_nj = 40.0;
    dvfs_latency_cycles = 120;
  }

(** Do two models expose the same DVFS ladder (level, frequency and
    voltage of every point)?  A [dvfs] instruction carries a raw level
    number, so it is portable between two core classes exactly when
    their ladders agree. *)
let same_ladder a b =
  List.length a.points = List.length b.points
  && List.for_all2
       (fun (p : Operating_point.t) (q : Operating_point.t) ->
         p.Operating_point.level = q.Operating_point.level
         && p.Operating_point.freq_mhz = q.Operating_point.freq_mhz
         && p.Operating_point.voltage = q.Operating_point.voltage)
       a.points b.points

(** Compact one-line ladder description for reports and listings,
    e.g. ["L0@100MHz/0.80V,...,L3@400MHz/1.20V"]. *)
let describe_ladder t =
  String.concat ","
    (List.map
       (fun (p : Operating_point.t) ->
         Printf.sprintf "L%d@%.0fMHz/%.2fV" p.Operating_point.level
           p.Operating_point.freq_mhz p.Operating_point.voltage)
       t.points)

(** A variant with custom gating transition cost, for the break-even
    sweep (experiment F4). *)
let with_gate_energy t e = { t with gate_energy_nj = e }

let with_points t points =
  match List.rev points with
  | [] -> invalid_arg "Power_model.with_points: empty"
  | nominal :: _ -> { t with points; nominal }
