(** Energy accounting during simulation.

    The ledger tracks energy in nanojoules, broken down along two axes:
    by category (what the energy was spent on) and by component.  The
    benchmark harness uses the category breakdown for the energy-breakdown
    figure (F3) and the total for every energy table. *)

type category =
  | Dynamic          (** executing instructions *)
  | Leakage_active   (** leakage while the core is executing *)
  | Leakage_idle     (** leakage while the core is stalled/blocked *)
  | Gating_overhead  (** pg_on / pg_off transition energy *)
  | Dvfs_overhead    (** DVFS transition energy *)
  | Communication    (** bus transfers, channel operations *)

let all_categories =
  [ Dynamic; Leakage_active; Leakage_idle; Gating_overhead; Dvfs_overhead;
    Communication ]

let category_to_string = function
  | Dynamic -> "dynamic"
  | Leakage_active -> "leak-active"
  | Leakage_idle -> "leak-idle"
  | Gating_overhead -> "gate-ovh"
  | Dvfs_overhead -> "dvfs-ovh"
  | Communication -> "comm"

(* [category] is a closed enum, so the per-category axis is a plain
   float array indexed by [category_index] — the simulator charges the
   ledger on every instruction and a Hashtbl lookup on that path is
   measurable. *)
let category_index = function
  | Dynamic -> 0
  | Leakage_active -> 1
  | Leakage_idle -> 2
  | Gating_overhead -> 3
  | Dvfs_overhead -> 4
  | Communication -> 5

let category_count = 6

type t = {
  by_category : float array; (* indexed by category_index *)
  by_component : float array; (* indexed by Component.index *)
  (* one-element array rather than a [mutable float] field: in a mixed
     record a float field is boxed, so updating it on every charge
     would allocate; a float-array store writes the raw double *)
  total_cell : float array;
}

let create () =
  {
    by_category = Array.make category_count 0.0;
    by_component = Array.make Component.count 0.0;
    total_cell = Array.make 1 0.0;
  }

let charge t ~category ?component nj =
  if nj < 0.0 then invalid_arg "Energy_ledger.charge: negative energy";
  let ci = category_index category in
  t.by_category.(ci) <- t.by_category.(ci) +. nj;
  (match component with
  | Some c ->
    let i = Component.index c in
    t.by_component.(i) <- t.by_component.(i) +. nj
  | None -> ());
  t.total_cell.(0) <- t.total_cell.(0) +. nj

(* Raw accumulator views for the simulator's per-instruction hot path:
   without flambda a cross-module call with a float argument boxes the
   float, so the simulator hand-inlines the accumulation instead.  The
   contract is documented on the .mli. *)

let raw_by_category t = t.by_category
let raw_by_component t = t.by_component
let raw_total t = t.total_cell

let negative_energy () = invalid_arg "Energy_ledger.charge: negative energy"

let total t = t.total_cell.(0)

let of_category t category = t.by_category.(category_index category)

let of_component t c = t.by_component.(Component.index c)

(** Merge [src] into [dst] (used to aggregate per-core ledgers into a
    machine-wide ledger). *)
let merge_into ~dst ~src =
  List.iter
    (fun cat ->
      let e = of_category src cat in
      if e > 0.0 then charge dst ~category:cat e)
    all_categories;
  (* Component breakdown merged separately to avoid double-charging total. *)
  Array.iteri
    (fun i e -> dst.by_component.(i) <- dst.by_component.(i) +. e)
    src.by_component

let breakdown t =
  List.map (fun c -> (c, of_category t c)) all_categories

(** Per-component attribution, in [Component.all] order.  Only charges
    made with [~component] land here (leakage while idle, bus energy and
    transition overheads are core-level, not component-level). *)
let component_breakdown t =
  List.map (fun c -> (c, of_component t c)) Component.all

let pp fmt t =
  let nonzero to_s xs =
    String.concat "; "
      (List.filter_map
         (fun (c, e) ->
           if e > 0.0 then Some (Printf.sprintf "%s=%.1f" (to_s c) e)
           else None)
         xs)
  in
  Format.fprintf fmt "total=%.1fnJ [%s] {%s}" t.total_cell.(0)
    (nonzero category_to_string (breakdown t))
    (nonzero Component.to_string (component_breakdown t))

(** Machine-readable dump: total plus both breakdown axes, every
    category and component present (schema-stable even when zero). *)
let to_json t =
  let module J = Lp_util.Json in
  J.Obj
    [
      ("total_nj", J.Num t.total_cell.(0));
      ( "by_category",
        J.Obj
          (List.map
             (fun (c, e) -> (category_to_string c, J.Num e))
             (breakdown t)) );
      ( "by_component",
        J.Obj
          (List.map
             (fun (c, e) -> (Component.to_string c, J.Num e))
             (component_breakdown t)) );
    ]
